//! Packet construction.
//!
//! Workload generators build real frames once per flow and reuse them; the
//! builder assembles Ethernet(+VLAN) / IPv4 / UDP|TCP (+VXLAN inner stub)
//! with correct lengths and checksums.

use std::net::Ipv4Addr;

use crate::ether::{EtherType, EthernetFrame, MacAddr};
use crate::ipv4::Ipv4Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::vlan::VlanTag;
use crate::vxlan::VxlanHeader;
use crate::{ether, ipv4, tcp, udp, vlan, vxlan};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L4 {
    Udp,
    Tcp,
}

/// Fluent builder for test/workload frames.
///
/// ```
/// use albatross_packet::{PacketBuilder, flow::parse_frame};
/// let frame = PacketBuilder::udp(
///     "10.1.0.1".parse().unwrap(),
///     "10.2.0.2".parse().unwrap(),
///     4000,
///     4789,
/// )
/// .vlan(7)
/// .vxlan(0x1234, 128)
/// .build();
/// let parsed = parse_frame(&frame).unwrap();
/// assert_eq!(parsed.vni, Some(0x1234));
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    vlan: Option<u16>,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    ttl: u8,
    l4: L4,
    src_port: u16,
    dst_port: u16,
    /// VXLAN: (vni, inner frame length).
    vxlan: Option<(u32, usize)>,
    payload_len: usize,
    payload_byte: u8,
}

impl PacketBuilder {
    fn new(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16, l4: L4) -> Self {
        Self {
            src_mac: MacAddr::local(1),
            dst_mac: MacAddr::local(2),
            vlan: None,
            src_ip,
            dst_ip,
            ttl: 64,
            l4,
            src_port,
            dst_port,
            vxlan: None,
            payload_len: 0,
            payload_byte: 0,
        }
    }

    /// Starts a UDP packet.
    pub fn udp(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        Self::new(src_ip, dst_ip, src_port, dst_port, L4::Udp)
    }

    /// Starts a TCP packet.
    pub fn tcp(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        Self::new(src_ip, dst_ip, src_port, dst_port, L4::Tcp)
    }

    /// Adds an 802.1Q tag with the given VLAN id.
    pub fn vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid);
        self
    }

    /// Sets source/destination MACs.
    pub fn macs(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Sets the IPv4 TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Makes this a VXLAN packet carrying `inner_len` bytes of inner frame.
    /// Only meaningful with UDP destination port [`vxlan::UDP_PORT`].
    pub fn vxlan(mut self, vni: u32, inner_len: usize) -> Self {
        self.vxlan = Some((vni, inner_len));
        self
    }

    /// Appends `len` bytes of payload (pattern-filled).
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Sets the payload fill byte (to distinguish flows in tests).
    pub fn payload_byte(mut self, b: u8) -> Self {
        self.payload_byte = b;
        self
    }

    /// Total frame length this builder will produce.
    pub fn frame_len(&self) -> usize {
        let l4_payload = match self.vxlan {
            Some((_, inner_len)) => vxlan::HEADER_LEN + inner_len,
            None => self.payload_len,
        };
        let l4_hdr = match self.l4 {
            L4::Udp => udp::HEADER_LEN,
            L4::Tcp => tcp::MIN_HEADER_LEN,
        };
        ether::HEADER_LEN
            + self.vlan.map_or(0, |_| vlan::TAG_LEN)
            + ipv4::MIN_HEADER_LEN
            + l4_hdr
            + l4_payload
    }

    /// Assembles the frame with valid lengths and checksums.
    pub fn build(&self) -> Vec<u8> {
        let total = self.frame_len();
        let mut buf = vec![0u8; total];

        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth.set_src(self.src_mac);
        eth.set_dst(self.dst_mac);
        let mut offset = ether::HEADER_LEN;
        if let Some(vid) = self.vlan {
            eth.set_ethertype(EtherType::Vlan);
            let mut tag = VlanTag::new_unchecked(&mut buf[offset..]);
            tag.set_vid(vid);
            tag.set_inner_ethertype(EtherType::Ipv4);
            offset += vlan::TAG_LEN;
        } else {
            eth.set_ethertype(EtherType::Ipv4);
        }

        let ip_total = total - offset;
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut buf[offset..]);
            ip.init_basic_header();
            ip.set_total_len(ip_total as u16);
            ip.set_ttl(self.ttl);
            ip.set_protocol(match self.l4 {
                L4::Udp => 17,
                L4::Tcp => 6,
            });
            ip.set_src(self.src_ip);
            ip.set_dst(self.dst_ip);
        }
        let l4_offset = offset + ipv4::MIN_HEADER_LEN;

        match self.l4 {
            L4::Udp => {
                let udp_len = total - l4_offset;
                {
                    let mut u = UdpDatagram::new_unchecked(&mut buf[l4_offset..]);
                    u.set_src_port(self.src_port);
                    u.set_dst_port(self.dst_port);
                    u.set_len_field(udp_len as u16);
                }
                let payload_start = l4_offset + udp::HEADER_LEN;
                if let Some((vni, _)) = self.vxlan {
                    let mut v = VxlanHeader::new_unchecked(&mut buf[payload_start..]);
                    v.init();
                    v.set_vni(vni);
                    let inner_start = payload_start + vxlan::HEADER_LEN;
                    buf[inner_start..].fill(self.payload_byte);
                } else {
                    buf[payload_start..].fill(self.payload_byte);
                }
                let mut u = UdpDatagram::new_unchecked(&mut buf[l4_offset..]);
                u.fill_checksum(self.src_ip, self.dst_ip);
            }
            L4::Tcp => {
                let mut t = TcpSegment::new_unchecked(&mut buf[l4_offset..]);
                t.init_basic_header();
                t.set_src_port(self.src_port);
                t.set_dst_port(self.dst_port);
                t.set_flags(crate::tcp::TcpFlags::ACK);
                let payload_start = l4_offset + tcp::MIN_HEADER_LEN;
                buf[payload_start..].fill(self.payload_byte);
            }
        }

        // IPv4 header checksum last (fields are final now).
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[offset..]);
        ip.fill_checksum();
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::parse_frame;

    #[test]
    fn udp_frame_is_valid() {
        let b = PacketBuilder::udp(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            100,
            200,
        )
        .payload_len(26)
        .payload_byte(0x5A);
        let frame = b.build();
        assert_eq!(frame.len(), b.frame_len());
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.tuple.src_port, 100);

        // Checksums verify end-to-end.
        let ip = Ipv4Packet::new_checked(&frame[ether::HEADER_LEN..]).unwrap();
        assert!(ip.verify_checksum());
        let u = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(ip.src(), ip.dst()));
        assert!(u.payload().iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn vxlan_frame_layout() {
        let frame = PacketBuilder::udp(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            100,
            vxlan::UDP_PORT,
        )
        .vxlan(77, 100)
        .build();
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.vni, Some(77));
        // 14 eth + 20 ip + 8 udp + 8 vxlan + 100 inner
        assert_eq!(frame.len(), 150);
    }

    #[test]
    fn tcp_frame_parses() {
        let frame = PacketBuilder::tcp(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            443,
            55555,
        )
        .payload_len(5)
        .build();
        let p = parse_frame(&frame).unwrap();
        assert_eq!(p.tuple.protocol, crate::flow::IpProtocol::Tcp);
        assert_eq!(frame.len(), 14 + 20 + 20 + 5);
    }

    #[test]
    fn vlan_adds_four_bytes() {
        let plain =
            PacketBuilder::udp("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap(), 1, 2);
        let tagged = plain.clone().vlan(100);
        assert_eq!(tagged.frame_len(), plain.frame_len() + 4);
        let p = parse_frame(&tagged.build()).unwrap();
        assert_eq!(p.vlan, Some(100));
    }

    #[test]
    fn ttl_is_configurable() {
        let frame =
            PacketBuilder::udp("1.1.1.1".parse().unwrap(), "2.2.2.2".parse().unwrap(), 1, 2)
                .ttl(3)
                .build();
        let ip = Ipv4Packet::new_checked(&frame[ether::HEADER_LEN..]).unwrap();
        assert_eq!(ip.ttl(), 3);
    }
}
