//! UDP datagrams.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{ParseError, Result};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A typed view over a UDP datagram (header + payload).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wraps, checking the buffer covers the header and the length field is
    /// sane.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let len = u16::from_be_bytes([b[4], b[5]]) as usize;
        if len < HEADER_LEN {
            return Err(ParseError::Malformed);
        }
        if b.len() < len {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Payload bytes (bounded by the length field).
    pub fn payload(&self) -> &[u8] {
        let len = self.len_field() as usize;
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verifies the UDP checksum against the IPv4 pseudo-header. A zero
    /// checksum means "not computed" and passes (per RFC 768).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let b = self.buffer.as_ref();
        let stored = u16::from_be_bytes([b[6], b[7]]);
        if stored == 0 {
            return true;
        }
        let len = self.len_field();
        let acc = checksum::pseudo_header_sum(src.octets(), dst.octets(), 17, len)
            + checksum::sum(&b[..len as usize]);
        checksum::finish(acc) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and writes the checksum over the pseudo-header and datagram.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = self.len_field();
        let b = self.buffer.as_mut();
        b[6] = 0;
        b[7] = 0;
        let acc = checksum::pseudo_header_sum(src.octets(), dst.octets(), 17, len)
            + checksum::sum(&b[..len as usize]);
        let mut c = checksum::finish(acc);
        if c == 0 {
            c = 0xFFFF; // RFC 768: transmitted zero means "no checksum"
        }
        b[6..8].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len_field() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn sample(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_src_port(5000);
        d.set_dst_port(4789);
        d.set_len_field((HEADER_LEN + payload.len()) as u16);
        d.payload_mut().copy_from_slice(payload);
        d.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_with_checksum() {
        let buf = sample(b"hello world");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5000);
        assert_eq!(d.dst_port(), 4789);
        assert_eq!(d.payload(), b"hello world");
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let buf = sample(b"payload");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, Ipv4Addr::new(10, 0, 0, 3)));
    }

    #[test]
    fn zero_checksum_always_passes() {
        let mut buf = sample(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_bounds_payload() {
        // Buffer longer than the datagram: payload must respect len field.
        let mut buf = sample(b"abcd");
        buf.extend_from_slice(b"JUNK");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.payload(), b"abcd");
    }

    #[test]
    fn bad_length_rejected() {
        let mut buf = sample(b"abcd");
        buf[4] = 0;
        buf[5] = 4; // shorter than header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed
        );
        buf[5] = 200; // longer than buffer
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn corruption_detected() {
        let mut buf = sample(b"sensitive");
        let idx = buf.len() - 1;
        buf[idx] ^= 0x40;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, DST));
    }
}
