//! VXLAN encapsulation (RFC 7348).
//!
//! The VNI is the tenant identifier throughout the paper: the two-stage rate
//! limiter indexes its color table by `VNI % 4K` and hashes the VNI into the
//! meter table, and the "VXLAN routing table" is the LPM table whose >10M
//! rule capacity Tab. 6 highlights.

use crate::{ParseError, Result};

/// VXLAN header length.
pub const HEADER_LEN: usize = 8;

/// The IANA-assigned VXLAN UDP port.
pub const UDP_PORT: u16 = 4789;

/// A typed view over a VXLAN header (+ inner frame).
#[derive(Debug, Clone)]
pub struct VxlanHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VxlanHeader<T> {
    /// Wraps without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wraps, checking length and that the I flag (valid VNI) is set.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if b[0] & 0x08 == 0 {
            return Err(ParseError::Malformed); // I flag must be set
        }
        Ok(Self { buffer })
    }

    /// The 24-bit VXLAN Network Identifier.
    pub fn vni(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([0, b[4], b[5], b[6]])
    }

    /// The encapsulated Ethernet frame.
    pub fn inner(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VxlanHeader<T> {
    /// Initializes flags (I bit set) and reserved fields.
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[..HEADER_LEN].fill(0);
        b[0] = 0x08;
    }

    /// Sets the 24-bit VNI (high byte of `vni` is ignored).
    pub fn set_vni(&mut self, vni: u32) {
        let v = vni.to_be_bytes();
        let b = self.buffer.as_mut();
        b[4] = v[1];
        b[5] = v[2];
        b[6] = v[3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 16];
        let mut h = VxlanHeader::new_unchecked(&mut buf[..]);
        h.init();
        h.set_vni(0x00ABCDEF);
        let h = VxlanHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(h.vni(), 0x00ABCDEF);
        assert_eq!(h.inner().len(), 8);
    }

    #[test]
    fn vni_is_24_bits() {
        let mut buf = [0u8; 8];
        let mut h = VxlanHeader::new_unchecked(&mut buf[..]);
        h.init();
        h.set_vni(0xFF123456);
        assert_eq!(VxlanHeader::new_checked(&buf[..]).unwrap().vni(), 0x123456);
    }

    #[test]
    fn missing_i_flag_rejected() {
        let buf = [0u8; 8];
        assert_eq!(
            VxlanHeader::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            VxlanHeader::new_checked(&[8u8, 0, 0, 0, 0, 0, 0][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
