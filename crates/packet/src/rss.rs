//! Toeplitz hashing for receive-side scaling.
//!
//! RSS (§2.1, \[20\]) hashes the 5-tuple so all packets of a flow land on one
//! CPU core; Albatross reuses the same hash in PLB mode to pick the reorder
//! queue (`get_ordq_idx` in Fig. 3). The implementation is the standard
//! Toeplitz construction and is validated against Microsoft's published RSS
//! verification vectors, so it produces the exact same core assignments a
//! real NIC would.

use std::net::Ipv4Addr;

use crate::flow::FiveTuple;

/// The de-facto standard 40-byte RSS key from Microsoft's verification
/// suite (also the default in many NIC drivers).
pub const MICROSOFT_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A Toeplitz hasher over a fixed key.
#[derive(Debug, Clone)]
pub struct ToeplitzHasher {
    key: [u8; 40],
}

impl Default for ToeplitzHasher {
    fn default() -> Self {
        Self::new(MICROSOFT_KEY)
    }
}

impl ToeplitzHasher {
    /// Creates a hasher with an explicit key.
    pub fn new(key: [u8; 40]) -> Self {
        Self { key }
    }

    /// Hashes an arbitrary input (must be ≤ 36 bytes so every input bit has
    /// a full 32-bit key window).
    ///
    /// # Panics
    /// Panics if `input` exceeds 36 bytes.
    pub fn hash(&self, input: &[u8]) -> u32 {
        assert!(input.len() <= 36, "input too long for a 40-byte key");
        let mut result = 0u32;
        // The sliding 32-bit window of the key, advanced one bit per input
        // bit. Keep the next 64 key bits in a register and shift.
        let mut window = u64::from_be_bytes(self.key[0..8].try_into().unwrap());
        let mut next_key_byte = 8;
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= (window >> 32) as u32;
                }
                window <<= 1;
            }
            // Refill the low byte of the window.
            if next_key_byte < self.key.len() {
                window |= u64::from(self.key[next_key_byte]);
                next_key_byte += 1;
            }
        }
        result
    }

    /// Hashes the RSS IPv4+TCP/UDP input: src addr, dst addr, src port,
    /// dst port (network byte order).
    pub fn hash_v4_ports(&self, src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&src.octets());
        input[4..8].copy_from_slice(&dst.octets());
        input[8..10].copy_from_slice(&src_port.to_be_bytes());
        input[10..12].copy_from_slice(&dst_port.to_be_bytes());
        self.hash(&input)
    }

    /// Hashes the RSS IPv4-only input (for portless protocols).
    pub fn hash_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> u32 {
        let mut input = [0u8; 8];
        input[0..4].copy_from_slice(&src.octets());
        input[4..8].copy_from_slice(&dst.octets());
        self.hash(&input)
    }

    /// Hashes a 5-tuple the way a NIC's RSS engine would (ports included for
    /// TCP/UDP, address-only otherwise).
    pub fn hash_tuple(&self, t: &FiveTuple) -> u32 {
        use crate::flow::IpProtocol::*;
        match t.protocol {
            Tcp | Udp => self.hash_v4_ports(t.src_ip, t.dst_ip, t.src_port, t.dst_port),
            _ => self.hash_v4(t.src_ip, t.dst_ip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> ToeplitzHasher {
        ToeplitzHasher::default()
    }

    // Microsoft RSS verification suite, IPv4 with ports.
    #[test]
    fn msdn_vectors_with_ports() {
        let cases: &[(&str, u16, &str, u16, u32)] = &[
            ("66.9.149.187", 2794, "161.142.100.80", 1766, 0x51cc_c178),
            ("199.92.111.2", 14230, "65.69.140.83", 4739, 0xc626_b0ea),
            ("24.19.198.95", 12898, "12.22.207.184", 38024, 0x5c2b_394a),
            ("38.27.205.30", 48228, "209.142.163.6", 2217, 0xafc7_327f),
            ("153.39.163.191", 44251, "202.188.127.2", 1303, 0x10e8_28a2),
        ];
        for &(src, sp, dst, dp, expect) in cases {
            let got = h().hash_v4_ports(src.parse().unwrap(), dst.parse().unwrap(), sp, dp);
            assert_eq!(got, expect, "{src}:{sp} -> {dst}:{dp}");
        }
    }

    // Microsoft RSS verification suite, IPv4 address-only.
    #[test]
    fn msdn_vectors_addr_only() {
        let cases: &[(&str, &str, u32)] = &[
            ("66.9.149.187", "161.142.100.80", 0x323e_8fc2),
            ("199.92.111.2", "65.69.140.83", 0xd718_262a),
            ("24.19.198.95", "12.22.207.184", 0xd2d0_a5de),
            ("38.27.205.30", "209.142.163.6", 0x82989176),
            ("153.39.163.191", "202.188.127.2", 0x5d1809c5),
        ];
        for &(src, dst, expect) in cases {
            let got = h().hash_v4(src.parse().unwrap(), dst.parse().unwrap());
            assert_eq!(got, expect, "{src} -> {dst}");
        }
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(h().hash(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "input too long")]
    fn oversized_input_panics() {
        let _ = h().hash(&[0u8; 37]);
    }

    #[test]
    fn tuple_dispatches_on_protocol() {
        use crate::flow::{FiveTuple, IpProtocol};
        let t = FiveTuple {
            src_ip: "66.9.149.187".parse().unwrap(),
            dst_ip: "161.142.100.80".parse().unwrap(),
            src_port: 2794,
            dst_port: 1766,
            protocol: IpProtocol::Udp,
        };
        assert_eq!(h().hash_tuple(&t), 0x51cc_c178);
        let icmp = FiveTuple {
            protocol: IpProtocol::Icmp,
            src_port: 0,
            dst_port: 0,
            ..t
        };
        assert_eq!(h().hash_tuple(&icmp), 0x323e_8fc2);
    }

    #[test]
    fn distribution_over_queues_is_roughly_uniform() {
        // 4096 synthetic flows over 16 queues: no queue should be wildly
        // over- or under-subscribed (Toeplitz mixes well).
        let hasher = h();
        let mut counts = [0u32; 16];
        for i in 0..4096u32 {
            let src = Ipv4Addr::from(0x0a00_0000 | i);
            let v = hasher.hash_v4_ports(src, "192.168.0.1".parse().unwrap(), 1000, 80);
            counts[(v % 16) as usize] += 1;
        }
        let expect = 4096 / 16;
        for (q, &c) in counts.iter().enumerate() {
            assert!(
                (c as i32 - expect as i32).unsigned_abs() < expect / 2,
                "queue {q} has {c} flows, expected ~{expect}"
            );
        }
    }
}
