//! The PLB meta header.
//!
//! `plb_dispatch` tags every PLB packet with a meta header carrying the
//! packet sequence number (PSN); the meta travels with the packet to the CPU
//! and back so `plb_reorder` can restore order (§4.1). The GW pod sets the
//! *drop flag* in the meta when it drops a packet (ACL, rate limiting) so the
//! NIC releases reorder resources instead of waiting for the 100 µs timeout
//! (§4.1, HOL handling #2).
//!
//! Placement: §7 reports that inserting the meta at the packet *head*
//! disturbs encap/decap or costs 33.6% in extra copies, so production places
//! it at the *tail*. Both placements are implemented; the ablation bench
//! charges the head placement its measured copy cost.

use crate::{ParseError, Result};

/// On-wire size of the encoded meta header.
pub const META_LEN: usize = 16;

const MAGIC: u16 = 0xA1BA; // "ALBAtross"

/// Where the meta header is attached to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetaPlacement {
    /// Appended after the payload (production choice; tails are never
    /// touched by gateway processing).
    Tail,
    /// Inserted before the Ethernet header (ablation alternative; forces a
    /// copy on every encap/decap).
    Head,
}

/// Flag bits carried in the meta header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetaFlags(pub u8);

impl MetaFlags {
    /// GW pod dropped this packet; NIC must free reorder resources.
    pub const DROP: u8 = 0x01;
    /// Header-only delivery: payload stayed in the NIC buffer.
    pub const HEADER_ONLY: u8 = 0x02;

    /// True if the drop flag is set.
    pub fn drop(self) -> bool {
        self.0 & Self::DROP != 0
    }

    /// True if this is a header-only delivery.
    pub fn header_only(self) -> bool {
        self.0 & Self::HEADER_ONLY != 0
    }
}

/// The decoded PLB meta header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlbMeta {
    /// Packet sequence number assigned by `plb_dispatch` within the
    /// packet's order-preserving queue. Full width is kept here; the
    /// reorder engine's legal check deliberately examines only
    /// `psn[11:0]` (see `albatross-core`).
    pub psn: u32,
    /// Index of the order-preserving queue this packet belongs to.
    pub ordq: u8,
    /// Flag bits.
    pub flags: MetaFlags,
    /// NIC ingress timestamp in nanoseconds (for timeout determination).
    pub ingress_ns: u64,
}

impl PlbMeta {
    /// Creates a meta for a freshly dispatched packet.
    pub fn new(psn: u32, ordq: u8, ingress_ns: u64) -> Self {
        Self {
            psn,
            ordq,
            flags: MetaFlags::default(),
            ingress_ns,
        }
    }

    /// The low 12 bits of the PSN — the only bits the hardware legal check
    /// inspects (§4.1).
    pub fn psn_low12(&self) -> u16 {
        (self.psn & 0x0FFF) as u16
    }

    /// Marks the packet as dropped by the GW pod.
    pub fn set_drop(&mut self) {
        self.flags.0 |= MetaFlags::DROP;
    }

    /// Marks the packet as header-only delivery.
    pub fn set_header_only(&mut self) {
        self.flags.0 |= MetaFlags::HEADER_ONLY;
    }

    /// Encodes to the 16-byte wire format.
    pub fn encode(&self) -> [u8; META_LEN] {
        let mut out = [0u8; META_LEN];
        out[0..2].copy_from_slice(&MAGIC.to_be_bytes());
        out[2] = self.flags.0;
        out[3] = self.ordq;
        out[4..8].copy_from_slice(&self.psn.to_be_bytes());
        out[8..16].copy_from_slice(&self.ingress_ns.to_be_bytes());
        out
    }

    /// Decodes from the 16-byte wire format, validating the magic.
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < META_LEN {
            return Err(ParseError::Truncated);
        }
        if u16::from_be_bytes([data[0], data[1]]) != MAGIC {
            return Err(ParseError::Malformed);
        }
        Ok(Self {
            flags: MetaFlags(data[2]),
            ordq: data[3],
            psn: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ingress_ns: u64::from_be_bytes(data[8..16].try_into().unwrap()),
        })
    }

    /// Attaches this meta to `frame` in the given placement, returning the
    /// tagged packet.
    pub fn attach(&self, frame: &[u8], placement: MetaPlacement) -> Vec<u8> {
        let enc = self.encode();
        let mut out = Vec::with_capacity(frame.len() + META_LEN);
        match placement {
            MetaPlacement::Tail => {
                out.extend_from_slice(frame);
                out.extend_from_slice(&enc);
            }
            MetaPlacement::Head => {
                out.extend_from_slice(&enc);
                out.extend_from_slice(frame);
            }
        }
        out
    }

    /// Attaches this meta to an owned buffer *in place* — the operation the
    /// §7 placement lesson is about. Tail placement appends (amortized
    /// O(1)); head placement must shift the entire frame to make room,
    /// which is the extra copy that cost 33.6% of forwarding performance.
    pub fn attach_in_place(&self, frame: &mut Vec<u8>, placement: MetaPlacement) {
        let enc = self.encode();
        match placement {
            MetaPlacement::Tail => frame.extend_from_slice(&enc),
            MetaPlacement::Head => {
                // splice at the front: memmove of the whole frame.
                frame.splice(0..0, enc.iter().copied());
            }
        }
    }

    /// Removes an in-place-attached meta, returning it.
    pub fn detach_in_place(frame: &mut Vec<u8>, placement: MetaPlacement) -> Result<Self> {
        if frame.len() < META_LEN {
            return Err(ParseError::Truncated);
        }
        match placement {
            MetaPlacement::Tail => {
                let split = frame.len() - META_LEN;
                let meta = Self::decode(&frame[split..])?;
                frame.truncate(split);
                Ok(meta)
            }
            MetaPlacement::Head => {
                let meta = Self::decode(&frame[..META_LEN])?;
                frame.drain(0..META_LEN);
                Ok(meta)
            }
        }
    }

    /// Splits a tagged packet back into `(meta, frame)`.
    pub fn detach(tagged: &[u8], placement: MetaPlacement) -> Result<(Self, &[u8])> {
        if tagged.len() < META_LEN {
            return Err(ParseError::Truncated);
        }
        match placement {
            MetaPlacement::Tail => {
                let split = tagged.len() - META_LEN;
                let meta = Self::decode(&tagged[split..])?;
                Ok((meta, &tagged[..split]))
            }
            MetaPlacement::Head => {
                let meta = Self::decode(&tagged[..META_LEN])?;
                Ok((meta, &tagged[META_LEN..]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut m = PlbMeta::new(0xABCDE, 3, 123_456_789);
        m.set_header_only();
        let d = PlbMeta::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
        assert!(d.flags.header_only());
        assert!(!d.flags.drop());
    }

    #[test]
    fn psn_low12_masks() {
        let m = PlbMeta::new(0x0000_1FFF, 0, 0);
        assert_eq!(m.psn_low12(), 0x0FFF);
        let m = PlbMeta::new(0x0000_1000, 0, 0);
        assert_eq!(m.psn_low12(), 0);
    }

    #[test]
    fn drop_flag() {
        let mut m = PlbMeta::new(1, 0, 0);
        assert!(!m.flags.drop());
        m.set_drop();
        let d = PlbMeta::decode(&m.encode()).unwrap();
        assert!(d.flags.drop());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = PlbMeta::new(1, 0, 0).encode();
        enc[0] = 0;
        assert_eq!(PlbMeta::decode(&enc).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            PlbMeta::decode(&[0u8; 15]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn tail_attachment_preserves_frame_bytes() {
        let frame = vec![0x11u8; 60];
        let m = PlbMeta::new(42, 1, 999);
        let tagged = m.attach(&frame, MetaPlacement::Tail);
        assert_eq!(tagged.len(), 76);
        // Frame head is untouched — encap/decap can proceed in place.
        assert_eq!(&tagged[..60], &frame[..]);
        let (d, f) = PlbMeta::detach(&tagged, MetaPlacement::Tail).unwrap();
        assert_eq!(d, m);
        assert_eq!(f, &frame[..]);
    }

    #[test]
    fn head_attachment_shifts_frame() {
        let frame = vec![0x22u8; 30];
        let m = PlbMeta::new(7, 0, 1);
        let tagged = m.attach(&frame, MetaPlacement::Head);
        assert_eq!(&tagged[META_LEN..], &frame[..]);
        let (d, f) = PlbMeta::detach(&tagged, MetaPlacement::Head).unwrap();
        assert_eq!(d, m);
        assert_eq!(f, &frame[..]);
    }

    #[test]
    fn in_place_roundtrip_both_placements() {
        for placement in [MetaPlacement::Tail, MetaPlacement::Head] {
            let mut frame = vec![0x5Au8; 100];
            let m = PlbMeta::new(3, 1, 7);
            m.attach_in_place(&mut frame, placement);
            assert_eq!(frame.len(), 116);
            let d = PlbMeta::detach_in_place(&mut frame, placement).unwrap();
            assert_eq!(d, m);
            assert_eq!(frame, vec![0x5Au8; 100]);
        }
    }

    #[test]
    fn in_place_detach_too_short_fails() {
        let mut frame = vec![0u8; 10];
        assert!(PlbMeta::detach_in_place(&mut frame, MetaPlacement::Tail).is_err());
    }

    #[test]
    fn detach_with_wrong_placement_fails_or_mismatches() {
        let frame = vec![0u8; 40];
        let m = PlbMeta::new(9, 2, 5);
        let tagged = m.attach(&frame, MetaPlacement::Tail);
        // Head-decode sees frame bytes where the magic should be.
        assert!(PlbMeta::detach(&tagged, MetaPlacement::Head).is_err());
    }
}
