//! IPv4 headers.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::{ParseError, Result};

/// Minimum IPv4 header length (IHL = 5).
pub const MIN_HEADER_LEN: usize = 20;

/// A typed view over an IPv4 packet (header + payload).
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wraps, validating version, IHL, and that the buffer covers the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let version = b[0] >> 4;
        let ihl = (b[0] & 0x0F) as usize * 4;
        if version != 4 || ihl < MIN_HEADER_LEN {
            return Err(ParseError::Malformed);
        }
        if b.len() < ihl {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        (self.buffer.as_ref()[0] & 0x0F) as usize * 4
    }

    /// Total length field.
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Protocol number (6 = TCP, 17 = UDP).
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// True when the header checksum verifies. A header whose IHL points
    /// past the buffer is malformed and reports `false` rather than
    /// panicking (unchecked views can see such bytes).
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        let b = self.buffer.as_ref();
        if b.len() < hl {
            return false;
        }
        checksum::verify(&b[..hl])
    }

    /// Bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initializes version=4, IHL=5, and zeroes DSCP/flags.
    pub fn init_basic_header(&mut self) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[6] = 0;
        b[7] = 0;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the protocol number.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[9] = proto;
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.octets());
    }

    /// Recomputes and writes the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        let b = self.buffer.as_mut();
        b[10] = 0;
        b[11] = 0;
        let c = checksum::checksum(&b[..hl]);
        b[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Decrements the TTL and incrementally patches the checksum
    /// (RFC 1624-style update), as a forwarding gateway must.
    ///
    /// Returns `false` (and leaves the packet untouched) when the TTL is
    /// already 0 or 1, in which case the packet must be dropped.
    pub fn decrement_ttl(&mut self) -> bool {
        let b = self.buffer.as_mut();
        if b[8] <= 1 {
            return false;
        }
        // RFC 1624: HC' = ~(~HC + ~m + m'), where m is the 16-bit word
        // holding TTL (high byte) and protocol (low byte). The naive
        // "checksum += 0x0100" shortcut (RFC 1141) miscomputes the 0xFFFF
        // corner case.
        let m = u16::from_be_bytes([b[8], b[9]]);
        b[8] -= 1;
        let m_new = u16::from_be_bytes([b[8], b[9]]);
        let hc = u16::from_be_bytes([b[10], b[11]]);
        let mut acc = u32::from(!hc) + u32::from(!m) + u32::from(m_new);
        while acc > 0xFFFF {
            acc = (acc & 0xFFFF) + (acc >> 16);
        }
        let hc_new = !(acc as u16);
        b[10..12].copy_from_slice(&hc_new.to_be_bytes());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut buf = vec![0u8; 40];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.init_basic_header();
        p.set_total_len(40);
        p.set_ident(0x1234);
        p.set_ttl(64);
        p.set_protocol(17);
        p.set_src(Ipv4Addr::new(10, 0, 0, 1));
        p.set_dst(Ipv4Addr::new(192, 168, 1, 2));
        p.fill_checksum();
        buf
    }

    #[test]
    fn roundtrip_and_checksum() {
        let buf = sample();
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), 17);
        assert_eq!(p.src(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(p.dst(), Ipv4Addr::new(192, 168, 1, 2));
        assert_eq!(p.total_len(), 40);
        assert_eq!(p.header_len(), 20);
        assert!(p.verify_checksum());
        assert_eq!(p.payload().len(), 20);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut buf = sample();
        buf[0] = 0x44; // IHL 4 → 16 bytes, illegal
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0x45u8; 19][..]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn ttl_decrement_keeps_checksum_valid() {
        let mut buf = sample();
        {
            let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
            assert!(p.decrement_ttl());
        }
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.ttl(), 63);
        assert!(p.verify_checksum(), "incremental checksum update broke");
    }

    #[test]
    fn ttl_decrement_over_many_hops_stays_valid() {
        let mut buf = sample();
        for expected in (1..64u8).rev() {
            let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
            assert!(p.decrement_ttl());
            let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
            assert_eq!(p.ttl(), expected);
            assert!(p.verify_checksum(), "broke at ttl {expected}");
        }
        // TTL 1: must refuse.
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = sample();
        buf[15] ^= 0xFF;
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }
}
