//! TCP segments (header view only — the gateway forwards TCP, it does not
//! terminate it; full stream semantics live with the tenants).

use crate::{ParseError, Result};

/// Minimum TCP header length (data offset = 5).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN bit.
    pub const FIN: u8 = 0x01;
    /// SYN bit.
    pub const SYN: u8 = 0x02;
    /// RST bit.
    pub const RST: u8 = 0x04;
    /// PSH bit.
    pub const PSH: u8 = 0x08;
    /// ACK bit.
    pub const ACK: u8 = 0x10;

    /// True if SYN set.
    pub fn syn(self) -> bool {
        self.0 & Self::SYN != 0
    }
    /// True if FIN set.
    pub fn fin(self) -> bool {
        self.0 & Self::FIN != 0
    }
    /// True if RST set.
    pub fn rst(self) -> bool {
        self.0 & Self::RST != 0
    }
    /// True if ACK set.
    pub fn ack(self) -> bool {
        self.0 & Self::ACK != 0
    }
}

/// A typed view over a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Self { buffer }
    }

    /// Wraps, validating the data offset and buffer length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let doff = ((b[12] >> 4) as usize) * 4;
        if doff < MIN_HEADER_LEN {
            return Err(ParseError::Malformed);
        }
        if b.len() < doff {
            return Err(ParseError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack_no(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[12] >> 4) as usize) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.buffer.as_ref()[13] & 0x3F)
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initializes data offset = 5, flags cleared.
    pub fn init_basic_header(&mut self) {
        let b = self.buffer.as_mut();
        b[12] = 0x50;
        b[13] = 0;
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, s: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&s.to_be_bytes());
    }

    /// Sets the acknowledgment number.
    pub fn set_ack_no(&mut self, a: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&a.to_be_bytes());
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, f: u8) {
        self.buffer.as_mut()[13] = f & 0x3F;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; 32];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.init_basic_header();
        s.set_src_port(443);
        s.set_dst_port(51000);
        s.set_seq(0xDEADBEEF);
        s.set_ack_no(0x01020304);
        s.set_flags(TcpFlags::SYN | TcpFlags::ACK);
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 443);
        assert_eq!(s.dst_port(), 51000);
        assert_eq!(s.seq(), 0xDEADBEEF);
        assert_eq!(s.ack_no(), 0x01020304);
        assert!(s.flags().syn() && s.flags().ack());
        assert!(!s.flags().fin() && !s.flags().rst());
        assert_eq!(s.header_len(), 20);
        assert_eq!(s.payload().len(), 12);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut buf = [0u8; 20];
        buf[12] = 0x40; // doff 4 → 16 bytes
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed
        );
        buf[12] = 0xF0; // doff 15 → 60 bytes, buffer only 20
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 19][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
