//! `albatross-testkit` — the in-tree test substrate that keeps the
//! workspace hermetic.
//!
//! The build environment is offline with an empty registry cache, and
//! DESIGN.md §6 promises bit-identical regeneration of every figure. Both
//! point the same way: no registry dependencies at all. This crate replaces
//! the three external test/bench dependencies the seed tree used:
//!
//! * **`proptest`** → [`props!`] + the [`prop`] strategy combinators: a
//!   seeded property harness with fixed-iteration runs, reproducing-seed
//!   failure reports and greedy input shrinking. Randomness is
//!   [`albatross_sim::SimRng`] (in-tree xoshiro256++), so the exact case
//!   sequence of every property test is pinned by the repo itself.
//! * **`criterion`** → [`BenchTimer`]: warm-up, calibrated sample length,
//!   median/p99 per-iteration report.
//! * **`rand` in tests** → [`SimRng`] re-exported here for convenience.
//!
//! It also hosts [`alloc::CountingAllocator`], the `#[global_allocator]`
//! hook behind the burst datapath's zero-steady-state-allocation tests
//! (this crate is the one place in the workspace allowed to use `unsafe`,
//! which a `GlobalAlloc` impl requires).
//!
//! # Writing a property test
//!
//! ```ignore
//! use albatross_testkit::prelude::*;
//!
//! props! {
//!     #![cases(128)]
//!
//!     fn roundtrip(x in any::<u32>(), pad in vec_of(0u8..255, 0..64)) {
//!         assert_eq!(decode(&encode(x, &pad)), x);
//!     }
//! }
//! ```
//!
//! Set `TESTKIT_SEED=<u64>` to rerun every property with a different (or a
//! failure report's) stream.

pub mod alloc;
pub mod bench;
pub mod prop;

pub use albatross_sim::SimRng;
pub use alloc::CountingAllocator;
pub use bench::{BenchStats, BenchTimer};

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::bench::{BenchStats, BenchTimer};
    pub use crate::prop::{
        any, just, one_of, option_of, vec_of, BoxedStrategy, Strategy, StrategyExt,
    };
    pub use crate::{assume, one_of, props};
    pub use albatross_sim::SimRng;
}
