//! Allocation-counting global allocator for steady-state tests.
//!
//! The burst datapath promises *zero steady-state allocation*: once the
//! simulation's scratch buffers (packet bursts, egress buffers, timeout
//! lists) have grown to their working size, processing more packets must
//! not touch the allocator. That invariant is easy to break silently — a
//! stray `Vec::new()` in a hot path compiles fine and benches "okay" — so
//! it is enforced by a test hook instead: install [`CountingAllocator`] as
//! the `#[global_allocator]` of a test binary and compare
//! [`CountingAllocator::allocations`] deltas around the region of interest.
//!
//! ```ignore
//! use albatross_testkit::alloc::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! #[test]
//! fn steady_state_does_not_allocate() {
//!     warm_up();
//!     let before = CountingAllocator::allocations();
//!     hot_loop();
//!     let after = CountingAllocator::allocations();
//!     assert!(after - before < SMALL_SLACK);
//! }
//! ```
//!
//! The counters are process-global (`#[global_allocator]` is a singleton),
//! relaxed-atomic, and monotone; deltas are meaningful within one thread as
//! long as no other thread allocates concurrently — run such tests with
//! `--test-threads=1` or in their own test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// Zero-sized and `const`-constructible so it can be a
/// `#[global_allocator]` static.
#[derive(Debug)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (zero-sized; counters are global statics).
    pub const fn new() -> Self {
        Self
    }

    /// Total allocation calls (`alloc` + `realloc`) since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total deallocation calls since process start.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator since process start.
    pub fn bytes_allocated() -> u64 {
        BYTES_ALLOCATED.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers entirely to `System`; the counter updates are lock-free
// atomics and perform no allocation themselves.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
