//! A small wall-clock bench timer (the in-tree `criterion` replacement).
//!
//! Criterion's statistical machinery is overkill for this repo's needs:
//! the microbenches exist to show the *order of magnitude* of the hot-path
//! primitives next to the simulated numbers. [`BenchTimer`] warms the code
//! up, calibrates an iteration count so each sample runs long enough for
//! the clock to resolve, times a fixed number of samples, and reports the
//! median and p99 per-iteration cost.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one benchmark: per-iteration nanoseconds across samples.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-iteration cost in nanoseconds.
    pub median_ns: f64,
    /// 99th-percentile per-iteration cost in nanoseconds.
    pub p99_ns: f64,
    /// Fastest sample's per-iteration cost in nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration cost in nanoseconds.
    pub mean_ns: f64,
}

impl BenchStats {
    /// One aligned report line, e.g.
    /// `lpm_lookup_1M_routes                 median      92.1 ns  p99     101.3 ns`.
    pub fn render(&self) -> String {
        format!(
            "{:<36} median {:>10.1} ns  p99 {:>10.1} ns  min {:>10.1} ns  ({} x {} iters)",
            self.name,
            self.median_ns,
            self.p99_ns,
            self.min_ns,
            self.samples,
            self.iters_per_sample
        )
    }
}

/// The timer harness: `warmup`, then `samples` timed batches of a
/// calibrated iteration count.
#[derive(Debug, Clone)]
pub struct BenchTimer {
    /// Warm-up budget (also used to calibrate the iteration count).
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Target wall-clock length of one sample.
    pub target_sample: Duration,
}

impl Default for BenchTimer {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(200),
            samples: 50,
            target_sample: Duration::from_millis(2),
        }
    }
}

impl BenchTimer {
    /// A timer with the default budget (200 ms warm-up, 50 × 2 ms samples).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` under the timer and prints one [`BenchStats::render`] line.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchStats {
        // Warm up and calibrate: how many iterations fill one sample?
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let iters = ((self.target_sample.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let idx =
            |q: f64| ((per_iter.len() as f64 * q).ceil() as usize).clamp(1, per_iter.len()) - 1;
        let stats = BenchStats {
            name: name.to_string(),
            iters_per_sample: iters,
            samples: per_iter.len(),
            median_ns: per_iter[idx(0.5)],
            p99_ns: per_iter[idx(0.99)],
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
        };
        println!("{}", stats.render());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_timer() -> BenchTimer {
        BenchTimer {
            warmup: Duration::from_millis(5),
            samples: 11,
            target_sample: Duration::from_micros(200),
        }
    }

    #[test]
    fn stats_are_ordered_and_positive() {
        let mut acc = 0u64;
        let s = fast_timer().bench("spin", || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(s.min_ns > 0.0);
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p99_ns);
        assert_eq!(s.samples, 11);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn render_contains_name_and_median() {
        let s = fast_timer().bench("render_check", || 1 + 1);
        let line = s.render();
        assert!(line.contains("render_check"));
        assert!(line.contains("median"));
    }
}
