//! A minimal seeded property-testing harness (the in-tree `proptest`
//! replacement).
//!
//! Design goals, in order:
//!
//! 1. **Hermetic** — no registry dependencies; randomness comes from
//!    [`albatross_sim::SimRng`] (in-tree xoshiro256++), so the exact case
//!    sequence of every property test is pinned forever.
//! 2. **Deterministic by default** — every test derives its stream from a
//!    fixed base seed XOR a hash of the test's name. A failure report
//!    always prints the seed; set `TESTKIT_SEED` to explore other streams.
//! 3. **Debuggable failures** — on failure the input is greedily shrunk
//!    (integers toward their lower bound, vectors by removal then by
//!    element, tuples componentwise) and the report carries the minimal
//!    input, the original input, the seed and the panic message.
//!
//! The entry point is the [`props!`](crate::props) macro; see the crate
//! docs for a full example.

use std::cell::Cell;
use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use albatross_sim::SimRng;

/// Base seed when `TESTKIT_SEED` is not set. Fixed so CI runs are
/// reproducible; the per-test stream also mixes in the test's name.
pub const DEFAULT_BASE_SEED: u64 = 0xA1BA_7055_0000_2025;

/// How many generated inputs each property runs by default.
pub const DEFAULT_CASES: u32 = 256;

/// Hard cap on greedy shrink steps (each step strictly reduces the input,
/// so this is a safety net, not a tuning knob).
const MAX_SHRINK_STEPS: u32 = 4096;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of test inputs with optional greedy shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Candidate simplifications of `value`, each strictly "smaller" than
    /// the input (the runner keeps the first candidate that still fails).
    /// Default: no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Combinators available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transforms generated values. The mapped strategy does not shrink
    /// (the transform is not invertible in general).
    fn map<T: Clone + Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed to mix differently-typed arms in
    /// [`one_of`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// See [`StrategyExt::map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Clone + Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SimRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SimRng) -> T {
        self.0.generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Full-range generation for the primitive types `any::<T>()` supports.
pub trait Arbitrary: Clone + Debug {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut SimRng) -> Self;
    /// Simplification candidates (see [`Strategy::shrink`]).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

/// Uniform over `T`'s whole domain: `any::<u32>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SimRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// Shrink candidates for an integer already known to exceed `lo`, ordered
/// boldest first: the bound itself, the midpoint, a quarter-step back, and
/// the predecessor. The geometric middle candidates make greedy shrinking
/// converge in O(log) steps instead of crawling by one.
fn shrink_toward(v: u64, lo: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        for cand in [lo + (v - lo) / 2, v - (v - lo) / 4, v - 1] {
            if cand != v && !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SimRng) -> Self {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<Self> {
                shrink_toward(*self as u64, 0)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*value as u64, self.start as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*value as u64, *self.start() as u64)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SimRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                (self.start..=<$t>::MAX).shrink(value)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SimRng) -> Self {
        rng.next_u64() & 1 == 1
    }
    fn shrink_value(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value > self.start {
            vec![self.start, self.start + (value - self.start) / 2.0]
        } else {
            Vec::new()
        }
    }
}

/// Always produces `value` (the `proptest::Just` equivalent).
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SimRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Collections and combinators
// ---------------------------------------------------------------------------

/// A length specification for [`vec_of`]: a fixed size or a range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec` of values from `elem`, with a length drawn from `len`.
pub fn vec_of<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

/// See [`vec_of`].
pub struct VecStrategy<S> {
    elem: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<S::Value> {
        let n = self.len.lo + rng.below((self.len.hi - self.len.lo + 1) as u64) as usize;
        // `Iterator::map` spelled out: ranges are also `Strategy`, so the
        // blanket `StrategyExt::map` makes plain `.map` ambiguous here.
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.elem.generate(rng));
        }
        v
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // First try to make the vector shorter…
        if value.len() > self.len.lo {
            let half = self.len.lo.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
            if value.len() > 1 {
                out.push(value[1..].to_vec());
            }
        }
        // …then to shrink individual elements in place.
        for (i, v) in value.iter().enumerate() {
            for cand in self.elem.shrink(v) {
                let mut copy = value.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// `Option` of values from `inner`: `None` one time in four, like
/// `proptest::option::of`'s default bias toward `Some`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`option_of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut SimRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }

    fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match value {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(self.inner.shrink(v).into_iter().map(Some))
                .collect(),
        }
    }
}

/// Weighted choice between type-erased arms (the `prop_oneof!`
/// equivalent); use through the [`one_of!`](crate::one_of) macro.
pub fn one_of<T: Clone + Debug>(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
    assert!(!arms.is_empty(), "one_of needs at least one arm");
    assert!(arms.iter().any(|(w, _)| *w > 0), "one_of needs weight > 0");
    OneOf { arms }
}

/// See [`one_of`].
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: Clone + Debug> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SimRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum covered above")
    }
    // No shrinking: a value cannot be attributed back to the arm that
    // produced it, and cross-arm shrink candidates may leave the domain.
}

macro_rules! impl_tuple {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Panic payload distinguishing "this input doesn't apply" from failure.
struct DiscardToken;

/// Rejects the current input without failing the property (the
/// `prop_assume!` escape hatch; use through [`assume!`](crate::assume)).
pub fn discard() -> ! {
    panic::panic_any(DiscardToken)
}

thread_local! {
    /// True while the runner executes a test body: the panic hook stays
    /// silent so shrinking doesn't spray hundreds of backtraces.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// The base seed: `TESTKIT_SEED` (decimal or 0x-hex) when set, else
/// [`DEFAULT_BASE_SEED`].
pub fn base_seed() -> u64 {
    match std::env::var("TESTKIT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("TESTKIT_SEED {s:?} is not a u64"))
        }
        Err(_) => DEFAULT_BASE_SEED,
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

enum CaseResult {
    Pass,
    Discard,
    Fail(String),
}

fn run_case<V>(test: &dyn Fn(V), value: V) -> CaseResult {
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| test(value)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => CaseResult::Pass,
        Err(payload) if payload.is::<DiscardToken>() => CaseResult::Discard,
        Err(payload) => CaseResult::Fail(payload_message(&payload)),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedily minimizes a failing input: repeatedly takes the first shrink
/// candidate that still fails until none does.
fn minimize<S: Strategy>(
    strat: &S,
    test: &dyn Fn(S::Value),
    mut current: S::Value,
) -> (S::Value, u32) {
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&current) {
            if let CaseResult::Fail(_) = run_case(test, cand.clone()) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, steps)
}

/// Runs `cases` generated inputs of `strat` through `test`, shrinking and
/// reporting on the first failure. The entry point the
/// [`props!`](crate::props) macro expands to.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) when a case fails or when too
/// many inputs are discarded via [`discard`].
pub fn run_property<S: Strategy>(name: &str, cases: u32, strat: &S, test: &dyn Fn(S::Value)) {
    install_quiet_hook();
    let seed = base_seed() ^ fnv1a(name);
    let mut rng = SimRng::seed_from(seed);
    let max_discards = cases.saturating_mul(16).max(1024);
    let mut discards = 0u32;
    let mut case = 0u32;
    while case < cases {
        let value = strat.generate(&mut rng);
        match run_case(test, value.clone()) {
            CaseResult::Pass => case += 1,
            CaseResult::Discard => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property '{name}': {discards} inputs discarded before \
                     reaching {cases} cases — loosen the generator or the assume!"
                );
            }
            CaseResult::Fail(first_message) => {
                let (minimal, steps) = minimize(strat, test, value.clone());
                let message = match run_case(test, minimal.clone()) {
                    CaseResult::Fail(m) => m,
                    _ => first_message,
                };
                panic!(
                    "property '{name}' failed at case {case} \
                     (seed {seed:#018x}, {steps} shrink steps)\n\
                     minimal input: {minimal:?}\n\
                     original input: {value:?}\n\
                     failure: {message}\n\
                     rerun with TESTKIT_SEED={base} to reproduce",
                    base = base_seed(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares seeded property tests.
///
/// ```ignore
/// albatross_testkit::props! {
///     #![cases(128)]   // optional; default 256
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in any::<u64>()) {
///         assert_eq!(a + (b % 10), (b % 10) + a);
///     }
/// }
/// ```
///
/// Each argument is `name in strategy`; the body receives the generated
/// values by value and uses plain `assert!`/`assert_eq!`. Use
/// [`assume!`](crate::assume) to reject inapplicable inputs.
#[macro_export]
macro_rules! props {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::__props_impl! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_impl! { $crate::prop::DEFAULT_CASES; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __props_impl {
    ($cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __strategy = ( $($strat,)+ );
            $crate::prop::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                &__strategy,
                &|__input| {
                    let ( $($arg,)+ ) = __input;
                    $body
                },
            );
        }
    )*};
}

/// Rejects the current generated input without failing the test (the
/// `prop_assume!` equivalent).
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            $crate::prop::discard();
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type (the `prop_oneof!` equivalent).
#[macro_export]
macro_rules! one_of {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::prop::one_of(vec![
            $(($weight, $crate::prop::StrategyExt::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop::one_of(vec![
            $((1u32, $crate::prop::StrategyExt::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (10u32..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let v = (0u8..=32).generate(&mut r);
            assert!(v <= 32);
            let v = (1u16..).generate(&mut r);
            assert!(v >= 1);
            let f = (0.25f64..0.75).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_range_inclusive_covers_extremes_without_panicking() {
        let mut r = rng();
        for _ in 0..64 {
            let _ = (0u64..=u64::MAX).generate(&mut r);
        }
    }

    #[test]
    fn vec_of_respects_length_spec() {
        let mut r = rng();
        for _ in 0..500 {
            let v = vec_of(any::<u8>(), 3..7).generate(&mut r);
            assert!((3..7).contains(&v.len()));
            let fixed = vec_of(any::<bool>(), 5usize).generate(&mut r);
            assert_eq!(fixed.len(), 5);
        }
    }

    #[test]
    fn integer_shrinking_reaches_lower_bound() {
        let strat = 5u32..1000;
        let mut v = 700u32;
        while let Some(&c) = strat.shrink(&v).first() {
            assert!(c < v, "shrink must strictly decrease");
            v = c;
        }
        assert_eq!(v, 5);
    }

    #[test]
    fn vec_shrinking_strictly_simplifies() {
        let strat = vec_of(0u32..100, 1..10);
        let v = vec![50u32, 60, 70];
        for cand in strat.shrink(&v) {
            let shorter = cand.len() < v.len();
            let elementwise_smaller = cand.len() == v.len()
                && cand.iter().zip(&v).any(|(a, b)| a < b)
                && cand.iter().zip(&v).all(|(a, b)| a <= b);
            assert!(shorter || elementwise_smaller, "{cand:?} vs {v:?}");
        }
    }

    #[test]
    fn same_name_same_cases() {
        let strat = (any::<u64>(), 0u32..100);
        let seed = base_seed() ^ fnv1a("x");
        let a: Vec<_> = {
            let mut r = SimRng::seed_from(seed);
            Iterator::map(0..10, |_| strat.generate(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = SimRng::seed_from(seed);
            Iterator::map(0..10, |_| strat.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_counterexample() {
        // Property "v < 500" fails for v >= 500; the minimal
        // counterexample under shrinking must be exactly 500.
        let strat = (0u32..1000,);
        let failing = 987u32;
        let test = |(v,): (u32,)| assert!(v < 500, "too big: {v}");
        let (minimal, steps) = minimize(&strat, &test, (failing,));
        assert_eq!(minimal.0, 500);
        assert!(steps > 0);
    }

    #[test]
    fn discarded_inputs_do_not_count_as_cases() {
        let seen = std::cell::Cell::new(0u32);
        run_property("discard_smoke", 16, &(0u32..100,), &|(v,)| {
            if v % 2 == 1 {
                discard();
            }
            seen.set(seen.get() + 1);
            assert_eq!(v % 2, 0);
        });
        assert_eq!(seen.get(), 16, "exactly `cases` even inputs must run");
    }

    props! {
        #![cases(32)]

        fn macro_smoke(a in 1u8.., flag in any::<bool>(), v in vec_of(0u64..9, 0..4)) {
            assert!(a >= 1);
            assert!(v.len() < 4);
            assert!(v.iter().all(|&x| x < 9));
            let _ = flag;
        }

        fn macro_one_of_and_map(
            op in one_of![
                3 => just(0u32),
                1 => StrategyExt::map(10u32..20, |v| v * 2),
            ],
        ) {
            assert!(op == 0 || (20..40).contains(&op));
        }

        fn macro_assume(v in 0u32..100) {
            crate::assume!(v % 3 == 0);
            assert_eq!(v % 3, 0);
        }
    }
}
