//! Property tests: the VM→NC batch lookup agrees with scalar lookups on
//! arbitrary maps and address batches (duplicates and misses included).

use std::net::Ipv4Addr;

use albatross_gateway::vmnc::{NcInfo, VmNcMap};
use albatross_testkit::prelude::*;

props! {
    #![cases(128)]

    fn lookup_burst_equals_n_scalar_lookups(
        entries in vec_of((0u32..8, any::<u32>(), any::<u32>(), any::<u32>()), 0..64),
        queries in vec_of((0u32..8, any::<u32>()), 1..80),
        dup_from in any::<u32>(),
    ) {
        // Small VNI space so a good fraction of queries hit; last write
        // wins on duplicate (vni, ip) keys exactly as HashMap::insert does.
        let mut map = VmNcMap::new();
        for &(vni, ip, nc, evni) in &entries {
            map.insert(vni, Ipv4Addr::from(ip), NcInfo {
                nc_addr: Ipv4Addr::from(nc),
                encap_vni: evni,
            });
        }
        let mut vnis: Vec<u32> = queries.iter().map(|&(v, _)| v).collect();
        let mut ips: Vec<u32> = queries.iter().map(|&(_, ip)| ip).collect();
        // Force a duplicate lane, and make some lanes query installed keys
        // so both hits and misses are exercised.
        let src = (dup_from as usize) % vnis.len();
        vnis.push(vnis[src]);
        ips.push(ips[src]);
        if let Some(&(vni, ip, _, _)) = entries.first() {
            vnis.push(vni);
            ips.push(ip);
        }
        let mut burst = Vec::new();
        map.lookup_burst(&vnis, &ips, &mut burst);
        assert_eq!(burst.len(), vnis.len());
        for i in 0..vnis.len() {
            assert_eq!(
                burst[i],
                map.lookup(vnis[i], Ipv4Addr::from(ips[i])),
                "lane {i}"
            );
        }
    }
}
