//! Property tests: the LPM table agrees with a naive reference on
//! arbitrary route sets and probes.

use std::net::Ipv4Addr;

use albatross_gateway::lpm::{LpmTable, Prefix};
use albatross_testkit::prelude::*;

/// Naive reference: linear scan for the longest matching prefix.
fn reference_lookup(routes: &[(Prefix, u32)], addr: Ipv4Addr) -> Option<u32> {
    routes
        .iter()
        .filter(|(p, _)| p.contains(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|&(_, nh)| nh)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).map(|(bits, len)| Prefix::new(Ipv4Addr::from(bits), len))
}

props! {
    #![cases(128)]

    fn lpm_matches_naive_reference(
        routes in vec_of((arb_prefix(), any::<u32>()), 0..64),
        probes in vec_of(any::<u32>(), 1..32),
    ) {
        let mut table = LpmTable::new();
        // Last write wins for duplicate prefixes — mirror that in the
        // reference by deduplicating keeping the last.
        let mut dedup: Vec<(Prefix, u32)> = Vec::new();
        for &(p, nh) in &routes {
            table.insert(p, nh);
            dedup.retain(|(q, _)| *q != p);
            dedup.push((p, nh));
        }
        assert_eq!(table.len(), dedup.len());
        for &probe in &probes {
            let addr = Ipv4Addr::from(probe);
            assert_eq!(
                table.lookup(addr),
                reference_lookup(&dedup, addr),
                "probe {}", addr
            );
        }
    }

    fn remove_restores_previous_behaviour(
        keep in arb_prefix(),
        remove in arb_prefix(),
        probes in vec_of(any::<u32>(), 1..16),
    ) {
        assume!(keep != remove);
        let mut with_both = LpmTable::new();
        with_both.insert(keep, 1);
        with_both.insert(remove, 2);
        with_both.remove(remove);
        let mut only_keep = LpmTable::new();
        only_keep.insert(keep, 1);
        for &probe in &probes {
            let addr = Ipv4Addr::from(probe);
            assert_eq!(with_both.lookup(addr), only_keep.lookup(addr));
        }
    }

    fn prefix_contains_iff_masked_equal(bits in any::<u32>(), len in 0u8..=32, probe in any::<u32>()) {
        let p = Prefix::new(Ipv4Addr::from(bits), len);
        let mask = if len == 0 { 0u32 } else { u32::MAX << (32 - len) };
        let expected = (probe & mask) == (bits & mask);
        assert_eq!(p.contains(Ipv4Addr::from(probe)), expected);
    }

    fn lookup_burst_equals_n_scalar_lookups(
        routes in vec_of((arb_prefix(), any::<u32>()), 0..64),
        probes in vec_of(any::<u32>(), 1..80),
        dup_from in any::<u32>(),
    ) {
        let mut table = LpmTable::new();
        for &(p, nh) in &routes {
            table.insert(p, nh);
        }
        // Force duplicate addresses into the batch: repeat one probe at a
        // pseudo-random position (batches >64 also cross the 64-lane chunk
        // boundary inside lookup_burst).
        let mut addrs = probes.clone();
        let src = (dup_from as usize) % addrs.len();
        addrs.push(addrs[src]);
        let mut burst = Vec::new();
        table.lookup_burst(&addrs, &mut burst);
        assert_eq!(burst.len(), addrs.len());
        for (i, &addr) in addrs.iter().enumerate() {
            assert_eq!(
                burst[i],
                table.lookup(Ipv4Addr::from(addr)),
                "lane {i} addr {}", Ipv4Addr::from(addr)
            );
        }
    }

    fn lookup_probe_count_bounded_by_populated_lengths(
        routes in vec_of((arb_prefix(), any::<u32>()), 0..32),
        probe in any::<u32>(),
    ) {
        let mut table = LpmTable::new();
        for &(p, nh) in &routes {
            table.insert(p, nh);
        }
        let (nh, probes_used) = table.lookup_probes(Ipv4Addr::from(probe));
        assert_eq!(nh, table.lookup(Ipv4Addr::from(probe)));
        let populated = table.populated_lengths().count_ones();
        assert!(
            probes_used <= populated,
            "{probes_used} probes > {populated} populated lengths"
        );
        if nh.is_none() {
            // A miss must have consulted every populated length.
            assert_eq!(probes_used, populated);
        }
    }
}
