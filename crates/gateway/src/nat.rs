//! Stateful source NAT.
//!
//! The canonical self-updating-table service from §2.1: a first packet of a
//! flow *allocates* a public `(ip, port)` binding — the data plane writes
//! its own table, which Tofino cannot do (entries only writable via the
//! control-plane runtime API) and which motivated keeping packet processing
//! on the CPU. Sessions age out on inactivity, replacing Tofino's missing
//! timers.
//!
//! CPS-grade storage (HyperNAT's finding: NAT dies on *session setup* rate,
//! not forwarding rate): both directions live in
//! [`albatross_mem::flowtab::FlowTable`] — cache-line-bucketed open
//! addressing with deterministic hashing — instead of `std` `HashMap`, and
//! expiry runs through an [`albatross_mem::flowtab::ExpiryWheel`]:
//! amortized `O(expired)` per sweep instead of the old full-map scan. Port
//! allocation is sharded per public IP with a per-shard free list, so a
//! port reclaimed by expiry is reusable by the very next allocation in the
//! same tick (the PR 9 expire-then-install convention).

use std::net::Ipv4Addr;

use albatross_mem::flowtab::{ExpiryWheel, FlowTable, InsertOutcome, WheelDecision};
use albatross_packet::FiveTuple;
use albatross_sim::SimTime;

/// A NAT binding for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatBinding {
    /// Public source address after translation.
    pub public_ip: Ipv4Addr,
    /// Public source port after translation.
    pub public_port: u16,
}

#[derive(Debug, Clone, Copy)]
struct Session {
    binding: NatBinding,
    /// Index into `ports` of the shard the binding's port came from.
    ip_idx: u32,
    last_active: SimTime,
}

/// Packs a public `(ip, port)` endpoint into the reverse-map key.
fn endpoint_key(ip: Ipv4Addr, port: u16) -> u64 {
    (u64::from(u32::from(ip)) << 16) | u64::from(port)
}

/// First usable NAT port (below are reserved).
const PORT_FLOOR: u16 = 1024;

/// Default session capacity when none is given.
const DEFAULT_MAX_SESSIONS: usize = 64 * 1024;

/// One public IP's port space: a free list of reclaimed ports (LIFO, so a
/// port expired this tick is the first one reallocated this tick) plus a
/// bump cursor over never-yet-used ports.
#[derive(Debug)]
struct PortShard {
    free: Vec<u16>,
    next: u16,
    /// Ports handed out at least once (bump cursor exhausted at 65535).
    exhausted: bool,
}

impl PortShard {
    fn new() -> Self {
        Self {
            free: Vec::new(),
            next: PORT_FLOOR,
            exhausted: false,
        }
    }

    /// Takes a port: reclaimed ones first, then fresh ones from the cursor.
    fn take(&mut self) -> Option<u16> {
        if let Some(p) = self.free.pop() {
            return Some(p);
        }
        if self.exhausted {
            return None;
        }
        let p = self.next;
        if p == u16::MAX {
            self.exhausted = true;
        } else {
            self.next = p + 1;
        }
        Some(p)
    }

    fn give_back(&mut self, port: u16) {
        self.free.push(port);
    }
}

/// SNAT table with sharded port allocation and incremental inactivity aging.
#[derive(Debug)]
pub struct SnatTable {
    /// Public IPs available to this gateway.
    public_ips: Vec<Ipv4Addr>,
    /// Per-public-IP port shard (free list + bump cursor).
    ports: Vec<PortShard>,
    /// Forward map: private tuple → session.
    sessions: FlowTable<FiveTuple, Session>,
    /// Reverse map: packed (public ip, public port) → private tuple.
    /// Entries are created and destroyed strictly together with their
    /// forward session, so `reverse.len() == sessions.len()` always.
    reverse: FlowTable<u64, FiveTuple>,
    /// Expiry wheel over forward-session slots.
    wheel: ExpiryWheel,
    /// Inactivity timeout.
    timeout: SimTime,
    created: u64,
    expired: u64,
}

impl SnatTable {
    /// Creates a table over `public_ips` with the given inactivity timeout
    /// and the default session capacity.
    ///
    /// # Panics
    /// Panics when no public IPs are supplied.
    pub fn new(public_ips: Vec<Ipv4Addr>, timeout: SimTime) -> Self {
        Self::with_capacity(public_ips, timeout, DEFAULT_MAX_SESSIONS)
    }

    /// Creates a table bounded at `max_sessions` concurrent sessions
    /// (clamped to the total port space).
    ///
    /// # Panics
    /// Panics when no public IPs are supplied.
    pub fn with_capacity(public_ips: Vec<Ipv4Addr>, timeout: SimTime, max_sessions: usize) -> Self {
        assert!(!public_ips.is_empty(), "SNAT needs at least one public IP");
        let n = public_ips.len();
        let port_space = n * usize::from(u16::MAX - PORT_FLOOR) + n;
        let cap = max_sessions.clamp(1, port_space);
        Self {
            public_ips,
            ports: (0..n).map(|_| PortShard::new()).collect(),
            sessions: FlowTable::with_capacity(cap),
            reverse: FlowTable::with_capacity(cap),
            wheel: ExpiryWheel::for_timeout(timeout),
            timeout,
            created: 0,
            expired: 0,
        }
    }

    /// Translates an outbound packet, creating a session on first sight.
    /// Returns `None` when the port space (or session table) is exhausted.
    pub fn translate_outbound(&mut self, tuple: &FiveTuple, now: SimTime) -> Option<NatBinding> {
        if let Some(s) = self.sessions.get_mut(tuple) {
            s.last_active = now;
            return Some(s.binding);
        }
        let (binding, ip_idx) = self.allocate(tuple)?;
        let session = Session {
            binding,
            ip_idx,
            last_active: now,
        };
        match self.sessions.insert(*tuple, session) {
            InsertOutcome::Created(slot) => {
                self.reverse
                    .insert(endpoint_key(binding.public_ip, binding.public_port), *tuple);
                self.wheel
                    .schedule(slot, now.saturating_add_ns(self.timeout.as_nanos()));
                self.created += 1;
                Some(binding)
            }
            InsertOutcome::Updated(_) => unreachable!("first-sight key cannot update"),
            InsertOutcome::Full => {
                // Table full: return the port so nothing leaks.
                self.ports[ip_idx as usize].give_back(binding.public_port);
                None
            }
        }
    }

    /// Picks a public IP by flow hash, then takes a port from that shard
    /// (falling over to the next shard when one is exhausted).
    fn allocate(&mut self, tuple: &FiveTuple) -> Option<(NatBinding, u32)> {
        let start_ip = (tuple.compact_hash() as usize) % self.public_ips.len();
        for k in 0..self.public_ips.len() {
            let ip_idx = (start_ip + k) % self.public_ips.len();
            if let Some(port) = self.ports[ip_idx].take() {
                return Some((
                    NatBinding {
                        public_ip: self.public_ips[ip_idx],
                        public_port: port,
                    },
                    ip_idx as u32,
                ));
            }
        }
        None
    }

    /// Resolves an inbound (return-path) packet addressed to a public
    /// binding back to the private flow.
    pub fn translate_inbound(
        &mut self,
        public_ip: Ipv4Addr,
        public_port: u16,
        now: SimTime,
    ) -> Option<FiveTuple> {
        let tuple = *self.reverse.get(&endpoint_key(public_ip, public_port))?;
        if let Some(s) = self.sessions.get_mut(&tuple) {
            s.last_active = now;
        }
        Some(tuple)
    }

    /// Ages out sessions idle longer than the timeout and reclaims their
    /// ports *immediately* — a port expired here is allocatable by the next
    /// `translate_outbound` in the same tick. Returns how many sessions
    /// were reclaimed.
    ///
    /// Cost is amortized `O(expired)`: the wheel only visits entries whose
    /// coarse deadline bucket has come due, never the whole map. A session
    /// refreshed since its bucket was armed is lazily re-armed at its true
    /// deadline.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let Self {
            ports,
            sessions,
            reverse,
            wheel,
            timeout,
            ..
        } = self;
        let timeout_ns = timeout.as_nanos();
        let mut reclaimed = 0usize;
        wheel.advance(now, |slot| match sessions.at(slot) {
            None => WheelDecision::Expire, // slot recycled; drop the handle
            Some((_, s)) => {
                if now.saturating_since(s.last_active) > timeout_ns {
                    let (_, s) = sessions.remove_slot(slot).expect("validated live slot");
                    // The reverse entry dies with its forward session —
                    // never after it.
                    reverse
                        .remove(&endpoint_key(s.binding.public_ip, s.binding.public_port))
                        .expect("reverse entry must exist for a live session");
                    ports[s.ip_idx as usize].give_back(s.binding.public_port);
                    reclaimed += 1;
                    WheelDecision::Expire
                } else {
                    WheelDecision::KeepUntil(s.last_active.saturating_add_ns(timeout_ns))
                }
            }
        });
        self.expired += reclaimed as u64;
        reclaimed
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions created since start.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Sessions expired since start.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Checks the forward/reverse coupling invariant: every session's
    /// binding resolves back to its tuple, and no reverse entry exists
    /// without a forward session. Test/debug aid; `O(n)`.
    pub fn check_reverse_integrity(&self) -> bool {
        if self.sessions.len() != self.reverse.len() {
            return false;
        }
        self.sessions.iter().all(|(_, tuple, s)| {
            self.reverse
                .get(&endpoint_key(s.binding.public_ip, s.binding.public_port))
                == Some(tuple)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_packet::flow::IpProtocol;

    fn tuple(src_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: "10.0.0.4".parse().unwrap(),
            dst_ip: "93.184.216.34".parse().unwrap(),
            src_port,
            dst_port: 443,
            protocol: IpProtocol::Tcp,
        }
    }

    fn table() -> SnatTable {
        SnatTable::new(
            vec!["47.1.1.1".parse().unwrap(), "47.1.1.2".parse().unwrap()],
            SimTime::from_secs(60),
        )
    }

    #[test]
    fn same_flow_keeps_its_binding() {
        let mut t = table();
        let b1 = t.translate_outbound(&tuple(1000), SimTime::ZERO).unwrap();
        let b2 = t
            .translate_outbound(&tuple(1000), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(b1, b2);
        assert_eq!(t.created(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_flows_get_distinct_bindings() {
        let mut t = table();
        let b1 = t.translate_outbound(&tuple(1000), SimTime::ZERO).unwrap();
        let b2 = t.translate_outbound(&tuple(1001), SimTime::ZERO).unwrap();
        assert_ne!(
            (b1.public_ip, b1.public_port),
            (b2.public_ip, b2.public_port)
        );
    }

    #[test]
    fn inbound_resolves_to_private_flow() {
        let mut t = table();
        let flow = tuple(2222);
        let b = t.translate_outbound(&flow, SimTime::ZERO).unwrap();
        let resolved = t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(1));
        assert_eq!(resolved, Some(flow));
        assert_eq!(t.translate_inbound(b.public_ip, 1, SimTime::ZERO), None);
    }

    #[test]
    fn idle_sessions_expire_and_ports_recycle() {
        let mut t = table();
        let flow = tuple(3000);
        let b = t.translate_outbound(&flow, SimTime::ZERO).unwrap();
        // Inbound traffic keeps it alive.
        t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(50));
        assert_eq!(t.expire(SimTime::from_secs(100)), 0, "kept alive at t=50");
        // Now it idles past the timeout.
        assert_eq!(t.expire(SimTime::from_secs(200)), 1);
        assert!(t.is_empty());
        assert_eq!(t.expired(), 1);
        // The reverse entry is gone; the binding can be reallocated.
        assert_eq!(
            t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(201)),
            None
        );
    }

    #[test]
    fn active_sessions_survive_expiry_sweeps() {
        let mut t = table();
        for p in 0..100 {
            t.translate_outbound(&tuple(p), SimTime::from_secs(10))
                .unwrap();
        }
        assert_eq!(t.expire(SimTime::from_secs(30)), 0);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn expire_then_allocate_reuses_the_port_in_the_same_tick() {
        // PR 9's expire-then-install convention, NAT edition: a port
        // reclaimed by `expire(now)` must be allocatable at the same `now`.
        let mut t = table();
        let dead = tuple(4000);
        let b = t.translate_outbound(&dead, SimTime::ZERO).unwrap();
        let now = SimTime::from_secs(200);
        assert_eq!(t.expire(now), 1);
        // The very next allocation that hashes onto the same shard pops the
        // freed port from the free list (LIFO) before touching the cursor.
        let mut reused = None;
        for p in 5000..5100u16 {
            let nb = t.translate_outbound(&tuple(p), now).unwrap();
            if nb.public_ip == b.public_ip {
                reused = Some(nb.public_port);
                break;
            }
        }
        assert_eq!(
            reused,
            Some(b.public_port),
            "freed port must be first out of its shard in the same tick"
        );
    }

    #[test]
    fn reverse_entries_never_outlive_forward_sessions() {
        let mut t = table();
        let mut now = SimTime::ZERO;
        for round in 0u64..6 {
            for p in 0..40u16 {
                t.translate_outbound(&tuple(p + (round as u16 % 2) * 40), now)
                    .unwrap();
            }
            assert!(
                t.check_reverse_integrity(),
                "round {round}: coupling broken"
            );
            now = now.saturating_add_ns(SimTime::from_secs(70).as_nanos());
            t.expire(now);
            assert!(
                t.check_reverse_integrity(),
                "round {round}: reverse entry outlived its session"
            );
        }
        assert_eq!(t.created(), t.expired() + t.len() as u64);
    }

    #[test]
    fn session_capacity_bounds_the_table() {
        let mut t =
            SnatTable::with_capacity(vec!["47.1.1.1".parse().unwrap()], SimTime::from_secs(60), 8);
        for p in 0..8 {
            assert!(t.translate_outbound(&tuple(p), SimTime::ZERO).is_some());
        }
        assert_eq!(t.translate_outbound(&tuple(99), SimTime::ZERO), None);
        assert_eq!(t.len(), 8);
        assert!(t.check_reverse_integrity(), "rejected insert must not leak");
        // Expiry frees room again.
        assert!(t.expire(SimTime::from_secs(200)) > 0);
        assert!(t
            .translate_outbound(&tuple(99), SimTime::from_secs(200))
            .is_some());
    }

    #[test]
    fn double_run_is_deterministic() {
        // Same op sequence, two fresh tables: identical bindings, identical
        // expiry counts, identical iteration-visible state.
        let run = || {
            let mut t = table();
            let mut log: Vec<(u16, u16)> = Vec::new();
            let mut now = SimTime::ZERO;
            for step in 0u64..400 {
                let p = (step % 97) as u16;
                now = now.saturating_add_ns(SimTime::from_millis(700).as_nanos());
                if let Some(b) = t.translate_outbound(&tuple(p), now) {
                    log.push((p, b.public_port));
                }
                if step % 13 == 0 {
                    t.expire(now);
                }
            }
            (log, t.created(), t.expired())
        };
        assert_eq!(run(), run());
    }
}
