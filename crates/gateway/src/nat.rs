//! Stateful source NAT.
//!
//! The canonical self-updating-table service from §2.1: a first packet of a
//! flow *allocates* a public `(ip, port)` binding — the data plane writes
//! its own table, which Tofino cannot do (entries only writable via the
//! control-plane runtime API) and which motivated keeping packet processing
//! on the CPU. Sessions age out on inactivity, replacing Tofino's missing
//! timers.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use albatross_packet::FiveTuple;
use albatross_sim::SimTime;

/// A NAT binding for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NatBinding {
    /// Public source address after translation.
    pub public_ip: Ipv4Addr,
    /// Public source port after translation.
    pub public_port: u16,
}

#[derive(Debug, Clone)]
struct Session {
    binding: NatBinding,
    last_active: SimTime,
}

/// SNAT table with port-block allocation and inactivity aging.
#[derive(Debug)]
pub struct SnatTable {
    /// Public IPs available to this gateway.
    public_ips: Vec<Ipv4Addr>,
    /// Next port to try per public IP index.
    next_port: Vec<u16>,
    /// Forward map: private tuple → session.
    sessions: HashMap<FiveTuple, Session>,
    /// Reverse map: (public ip, public port) → private tuple.
    reverse: HashMap<(Ipv4Addr, u16), FiveTuple>,
    /// Inactivity timeout.
    timeout: SimTime,
    created: u64,
    expired: u64,
}

/// First usable NAT port (below are reserved).
const PORT_FLOOR: u16 = 1024;

impl SnatTable {
    /// Creates a table over `public_ips` with the given inactivity timeout.
    ///
    /// # Panics
    /// Panics when no public IPs are supplied.
    pub fn new(public_ips: Vec<Ipv4Addr>, timeout: SimTime) -> Self {
        assert!(!public_ips.is_empty(), "SNAT needs at least one public IP");
        let n = public_ips.len();
        Self {
            public_ips,
            next_port: vec![PORT_FLOOR; n],
            sessions: HashMap::new(),
            reverse: HashMap::new(),
            timeout,
            created: 0,
            expired: 0,
        }
    }

    /// Translates an outbound packet, creating a session on first sight.
    /// Returns `None` when the port space is exhausted.
    pub fn translate_outbound(&mut self, tuple: &FiveTuple, now: SimTime) -> Option<NatBinding> {
        if let Some(s) = self.sessions.get_mut(tuple) {
            s.last_active = now;
            return Some(s.binding);
        }
        let binding = self.allocate(tuple)?;
        self.sessions.insert(
            *tuple,
            Session {
                binding,
                last_active: now,
            },
        );
        self.created += 1;
        Some(binding)
    }

    fn allocate(&mut self, tuple: &FiveTuple) -> Option<NatBinding> {
        // Spread flows over public IPs by flow hash; linear-probe ports.
        let start_ip = (tuple.compact_hash() as usize) % self.public_ips.len();
        for k in 0..self.public_ips.len() {
            let ip_idx = (start_ip + k) % self.public_ips.len();
            let ip = self.public_ips[ip_idx];
            let mut tries = 0u32;
            while tries < u32::from(u16::MAX - PORT_FLOOR) {
                let port = self.next_port[ip_idx];
                self.next_port[ip_idx] = if port == u16::MAX {
                    PORT_FLOOR
                } else {
                    port + 1
                };
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    self.reverse.entry((ip, port))
                {
                    slot.insert(*tuple);
                    return Some(NatBinding {
                        public_ip: ip,
                        public_port: port,
                    });
                }
                tries += 1;
            }
        }
        None
    }

    /// Resolves an inbound (return-path) packet addressed to a public
    /// binding back to the private flow.
    pub fn translate_inbound(
        &mut self,
        public_ip: Ipv4Addr,
        public_port: u16,
        now: SimTime,
    ) -> Option<FiveTuple> {
        let tuple = *self.reverse.get(&(public_ip, public_port))?;
        if let Some(s) = self.sessions.get_mut(&tuple) {
            s.last_active = now;
        }
        Some(tuple)
    }

    /// Ages out sessions idle longer than the timeout. Returns how many
    /// were reclaimed. (The control plane ran this on Tofino; on Albatross
    /// a ctrl core runs it.)
    pub fn expire(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout.as_nanos();
        let dead: Vec<FiveTuple> = self
            .sessions
            .iter()
            .filter(|(_, s)| now.saturating_since(s.last_active) > timeout)
            .map(|(t, _)| *t)
            .collect();
        for t in &dead {
            if let Some(s) = self.sessions.remove(t) {
                self.reverse
                    .remove(&(s.binding.public_ip, s.binding.public_port));
            }
        }
        self.expired += dead.len() as u64;
        dead.len()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions created since start.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Sessions expired since start.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_packet::flow::IpProtocol;

    fn tuple(src_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: "10.0.0.4".parse().unwrap(),
            dst_ip: "93.184.216.34".parse().unwrap(),
            src_port,
            dst_port: 443,
            protocol: IpProtocol::Tcp,
        }
    }

    fn table() -> SnatTable {
        SnatTable::new(
            vec!["47.1.1.1".parse().unwrap(), "47.1.1.2".parse().unwrap()],
            SimTime::from_secs(60),
        )
    }

    #[test]
    fn same_flow_keeps_its_binding() {
        let mut t = table();
        let b1 = t.translate_outbound(&tuple(1000), SimTime::ZERO).unwrap();
        let b2 = t
            .translate_outbound(&tuple(1000), SimTime::from_secs(1))
            .unwrap();
        assert_eq!(b1, b2);
        assert_eq!(t.created(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn different_flows_get_distinct_bindings() {
        let mut t = table();
        let b1 = t.translate_outbound(&tuple(1000), SimTime::ZERO).unwrap();
        let b2 = t.translate_outbound(&tuple(1001), SimTime::ZERO).unwrap();
        assert_ne!(
            (b1.public_ip, b1.public_port),
            (b2.public_ip, b2.public_port)
        );
    }

    #[test]
    fn inbound_resolves_to_private_flow() {
        let mut t = table();
        let flow = tuple(2222);
        let b = t.translate_outbound(&flow, SimTime::ZERO).unwrap();
        let resolved = t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(1));
        assert_eq!(resolved, Some(flow));
        assert_eq!(t.translate_inbound(b.public_ip, 1, SimTime::ZERO), None);
    }

    #[test]
    fn idle_sessions_expire_and_ports_recycle() {
        let mut t = table();
        let flow = tuple(3000);
        let b = t.translate_outbound(&flow, SimTime::ZERO).unwrap();
        // Inbound traffic keeps it alive.
        t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(50));
        assert_eq!(t.expire(SimTime::from_secs(100)), 0, "kept alive at t=50");
        // Now it idles past the timeout.
        assert_eq!(t.expire(SimTime::from_secs(200)), 1);
        assert!(t.is_empty());
        assert_eq!(t.expired(), 1);
        // The reverse entry is gone; the binding can be reallocated.
        assert_eq!(
            t.translate_inbound(b.public_ip, b.public_port, SimTime::from_secs(201)),
            None
        );
    }

    #[test]
    fn active_sessions_survive_expiry_sweeps() {
        let mut t = table();
        for p in 0..100 {
            t.translate_outbound(&tuple(p), SimTime::from_secs(10))
                .unwrap();
        }
        assert_eq!(t.expire(SimTime::from_secs(30)), 0);
        assert_eq!(t.len(), 100);
    }
}
