//! Stateful-NF session state backends (§7, "Stateful network function
//! support with PLB").
//!
//! Under PLB, packets of one flow execute on *different* cores, so flow
//! state becomes shared state. The paper's finding: *write-light* NFs
//! (state written at session establishment/termination only) scale roughly
//! linearly with cores, while *write-heavy* NFs (per-packet counters)
//! collapse under lock and cache-coherence contention — and removing the
//! locks doesn't help, because coherence traffic remains. The fix is making
//! state core-local.
//!
//! Both backends here are real concurrent structures exercised by real
//! threads in the `stateful_nf_scaling` bench:
//!
//! * [`LockedSessionTable`] — one shared map behind a mutex: the
//!   write-heavy anti-pattern.
//! * [`ShardedSessionTable`] — per-core shards (the "transform shared-states
//!   into local-states" optimization); aggregation sums shards on read.
//!
//! Storage is [`albatross_mem::flowtab::FlowTable`] — fixed-capacity,
//! cache-line-bucketed, deterministically hashed — not `std` `HashMap`:
//! the per-map random SipHash seed made shard layout (and so any
//! iteration-order-visible output, like [`SessionBackend::snapshot`])
//! differ run to run, violating the repo's byte-identity contract. A full
//! table drops further *new* flows (counted, like a real hardware session
//! table under flood) rather than growing unboundedly.
//!
//! Locks are `std::sync::Mutex` (the former `parking_lot` dependency was
//! dropped for a hermetic build). The §7 lesson survives the swap: the
//! write-heavy collapse comes from serializing on one lock *and* from the
//! cache-coherence traffic on its line, both of which std's futex-based
//! mutex exhibits identically; the sharded fix removes the sharing either
//! way.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use albatross_mem::flowtab::{FlowTable, InsertOutcome};
use albatross_sim::det::DetHashSet;

/// Per-flow session state (a session counter NF: bytes + packets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

/// Default flow capacity per backend (per shard for the sharded table).
const DEFAULT_FLOW_CAPACITY: usize = 16 * 1024;

/// A backend for per-flow counters updated from many cores.
pub trait SessionBackend: Send + Sync {
    /// Charges one packet of `bytes` to `flow` from `core`.
    fn record(&self, core: usize, flow: u64, bytes: u64);
    /// Total counters for `flow`, aggregated across cores.
    fn get(&self, flow: u64) -> SessionCounters;
    /// Number of distinct flows tracked.
    fn flows(&self) -> usize;
    /// Every tracked flow with its aggregated counters, in the backend's
    /// deterministic iteration order (identical across runs for identical
    /// histories).
    fn snapshot(&self) -> Vec<(u64, SessionCounters)>;
    /// Packets dropped because the table was full (new flow, no room).
    fn overflow_drops(&self) -> u64;
}

fn charge(table: &mut FlowTable<u64, SessionCounters>, flow: u64, bytes: u64) -> bool {
    if let Some(c) = table.get_mut(&flow) {
        c.packets += 1;
        c.bytes += bytes;
        return true;
    }
    !matches!(
        table.insert(flow, SessionCounters { packets: 1, bytes }),
        InsertOutcome::Full
    )
}

/// One global map behind a mutex — per-packet writes serialize on the lock
/// *and* on the cache line holding it.
#[derive(Debug)]
pub struct LockedSessionTable {
    inner: Mutex<FlowTable<u64, SessionCounters>>,
    overflow: AtomicU64,
}

impl LockedSessionTable {
    /// Creates an empty table with the default flow capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLOW_CAPACITY)
    }

    /// Creates an empty table accepting up to `capacity` distinct flows.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(FlowTable::with_capacity(capacity)),
            overflow: AtomicU64::new(0),
        }
    }
}

impl Default for LockedSessionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBackend for LockedSessionTable {
    fn record(&self, _core: usize, flow: u64, bytes: u64) {
        let mut map = self.inner.lock().unwrap();
        if !charge(&mut map, flow, bytes) {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn get(&self, flow: u64) -> SessionCounters {
        self.inner
            .lock()
            .unwrap()
            .get(&flow)
            .copied()
            .unwrap_or_default()
    }

    fn flows(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    fn snapshot(&self) -> Vec<(u64, SessionCounters)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(_, k, v)| (*k, *v))
            .collect()
    }

    fn overflow_drops(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

/// Cache-line-padded shard so neighbouring shards never false-share.
#[derive(Debug)]
struct Shard {
    map: Mutex<FlowTable<u64, SessionCounters>>,
    _pad: [u8; 64],
}

/// Per-core shards: each core writes only its own shard (no inter-core
/// contention on the write path); reads aggregate across shards.
#[derive(Debug)]
pub struct ShardedSessionTable {
    shards: Vec<Shard>,
    overflow: AtomicU64,
}

impl ShardedSessionTable {
    /// Creates a table with one shard per core and the default per-shard
    /// flow capacity.
    ///
    /// # Panics
    /// Panics when `cores` is zero.
    pub fn new(cores: usize) -> Self {
        Self::with_capacity(cores, DEFAULT_FLOW_CAPACITY)
    }

    /// Creates a table with one shard per core, each shard accepting up to
    /// `capacity` distinct flows.
    ///
    /// # Panics
    /// Panics when `cores` is zero.
    pub fn with_capacity(cores: usize, capacity: usize) -> Self {
        assert!(cores > 0, "need at least one shard");
        Self {
            shards: (0..cores)
                .map(|_| Shard {
                    map: Mutex::new(FlowTable::with_capacity(capacity)),
                    _pad: [0; 64],
                })
                .collect(),
            overflow: AtomicU64::new(0),
        }
    }
}

impl SessionBackend for ShardedSessionTable {
    fn record(&self, core: usize, flow: u64, bytes: u64) {
        let shard = &self.shards[core % self.shards.len()];
        let mut map = shard.map.lock().unwrap();
        if !charge(&mut map, flow, bytes) {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn get(&self, flow: u64) -> SessionCounters {
        let mut total = SessionCounters::default();
        for shard in &self.shards {
            if let Some(c) = shard.map.lock().unwrap().get(&flow) {
                total.packets += c.packets;
                total.bytes += c.bytes;
            }
        }
        total
    }

    fn flows(&self) -> usize {
        let mut flows: DetHashSet<u64> = DetHashSet::default();
        for shard in &self.shards {
            flows.extend(shard.map.lock().unwrap().iter().map(|(_, k, _)| *k));
        }
        flows.len()
    }

    fn snapshot(&self) -> Vec<(u64, SessionCounters)> {
        // Aggregate shard-by-shard, then sort by flow id: deterministic
        // regardless of which cores touched which flows.
        let mut agg: Vec<(u64, SessionCounters)> = Vec::new();
        for shard in &self.shards {
            for (_, k, v) in shard.map.lock().unwrap().iter() {
                match agg.iter_mut().find(|(f, _)| f == k) {
                    Some((_, c)) => {
                        c.packets += v.packets;
                        c.bytes += v.bytes;
                    }
                    None => agg.push((*k, *v)),
                }
            }
        }
        agg.sort_unstable_by_key(|(f, _)| *f);
        agg
    }

    fn overflow_drops(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(backend: Arc<dyn SessionBackend>, cores: usize, per_core: u64) {
        let mut handles = Vec::new();
        for core in 0..cores {
            let b = Arc::clone(&backend);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_core {
                    // Everyone hammers flow 1 (write-heavy) plus a private
                    // flow per core.
                    b.record(core, 1, 100);
                    b.record(core, 1000 + core as u64, 1);
                    let _ = i;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn locked_table_counts_exactly_under_concurrency() {
        let t: Arc<dyn SessionBackend> = Arc::new(LockedSessionTable::new());
        exercise(Arc::clone(&t), 4, 10_000);
        let c = t.get(1);
        assert_eq!(c.packets, 40_000);
        assert_eq!(c.bytes, 4_000_000);
        assert_eq!(t.flows(), 5);
        assert_eq!(t.overflow_drops(), 0);
    }

    #[test]
    fn sharded_table_counts_exactly_under_concurrency() {
        let t: Arc<dyn SessionBackend> = Arc::new(ShardedSessionTable::new(4));
        exercise(Arc::clone(&t), 4, 10_000);
        let c = t.get(1);
        assert_eq!(c.packets, 40_000, "aggregation must see all shards");
        assert_eq!(t.flows(), 5);
        assert_eq!(t.overflow_drops(), 0);
    }

    #[test]
    fn sharded_reads_of_unknown_flow_are_zero() {
        let t = ShardedSessionTable::new(2);
        assert_eq!(t.get(42), SessionCounters::default());
        assert_eq!(t.flows(), 0);
    }

    #[test]
    fn core_ids_beyond_shard_count_wrap() {
        let t = ShardedSessionTable::new(2);
        t.record(7, 5, 10); // shard 1
        assert_eq!(t.get(5).packets, 1);
    }

    #[test]
    fn full_table_drops_new_flows_but_keeps_counting_old_ones() {
        let t = LockedSessionTable::with_capacity(4);
        for f in 0..4 {
            t.record(0, f, 10);
        }
        t.record(0, 99, 10); // no room: dropped + counted
        assert_eq!(t.flows(), 4);
        assert_eq!(t.overflow_drops(), 1);
        assert_eq!(t.get(99), SessionCounters::default());
        t.record(0, 2, 10); // existing flows unaffected
        assert_eq!(t.get(2).packets, 2);
    }

    #[test]
    fn snapshots_are_identical_across_runs() {
        // The satellite determinism pin: identical histories must produce
        // byte-identical iteration-visible state. std HashMap's per-map
        // random seed failed this; the det-hashed flow table must not.
        let run = |sharded: bool| {
            let t: Arc<dyn SessionBackend> = if sharded {
                Arc::new(ShardedSessionTable::new(4))
            } else {
                Arc::new(LockedSessionTable::new())
            };
            for step in 0u64..5_000 {
                let flow = (step * step) % 257;
                t.record((step % 4) as usize, flow, step % 1500);
            }
            t.snapshot()
        };
        assert_eq!(run(false), run(false), "locked snapshot diverged");
        assert_eq!(run(true), run(true), "sharded snapshot diverged");
        // And the two backends agree on the aggregated state.
        let a: std::collections::BTreeMap<_, _> = run(false).into_iter().collect();
        let b: std::collections::BTreeMap<_, _> = run(true).into_iter().collect();
        assert_eq!(a, b, "backends disagree on aggregate counters");
    }
}
