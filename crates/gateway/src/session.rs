//! Stateful-NF session state backends (§7, "Stateful network function
//! support with PLB").
//!
//! Under PLB, packets of one flow execute on *different* cores, so flow
//! state becomes shared state. The paper's finding: *write-light* NFs
//! (state written at session establishment/termination only) scale roughly
//! linearly with cores, while *write-heavy* NFs (per-packet counters)
//! collapse under lock and cache-coherence contention — and removing the
//! locks doesn't help, because coherence traffic remains. The fix is making
//! state core-local.
//!
//! Both backends here are real concurrent structures exercised by real
//! threads in the `stateful_nf_scaling` bench:
//!
//! * [`LockedSessionTable`] — one shared map behind a mutex: the
//!   write-heavy anti-pattern.
//! * [`ShardedSessionTable`] — per-core shards (the "transform shared-states
//!   into local-states" optimization); aggregation sums shards on read.
//!
//! Locks are `std::sync::Mutex` (the former `parking_lot` dependency was
//! dropped for a hermetic build). The §7 lesson survives the swap: the
//! write-heavy collapse comes from serializing on one lock *and* from the
//! cache-coherence traffic on its line, both of which std's futex-based
//! mutex exhibits identically; the sharded fix removes the sharing either
//! way.

use std::collections::HashMap;
use std::sync::Mutex;

/// Per-flow session state (a session counter NF: bytes + packets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCounters {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
}

/// A backend for per-flow counters updated from many cores.
pub trait SessionBackend: Send + Sync {
    /// Charges one packet of `bytes` to `flow` from `core`.
    fn record(&self, core: usize, flow: u64, bytes: u64);
    /// Total counters for `flow`, aggregated across cores.
    fn get(&self, flow: u64) -> SessionCounters;
    /// Number of distinct flows tracked.
    fn flows(&self) -> usize;
}

/// One global map behind a mutex — per-packet writes serialize on the lock
/// *and* on the cache line holding it.
#[derive(Debug, Default)]
pub struct LockedSessionTable {
    inner: Mutex<HashMap<u64, SessionCounters>>,
}

impl LockedSessionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SessionBackend for LockedSessionTable {
    fn record(&self, _core: usize, flow: u64, bytes: u64) {
        let mut map = self.inner.lock().unwrap();
        let e = map.entry(flow).or_default();
        e.packets += 1;
        e.bytes += bytes;
    }

    fn get(&self, flow: u64) -> SessionCounters {
        self.inner
            .lock()
            .unwrap()
            .get(&flow)
            .copied()
            .unwrap_or_default()
    }

    fn flows(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Cache-line-padded shard so neighbouring shards never false-share.
#[derive(Debug)]
struct Shard {
    map: Mutex<HashMap<u64, SessionCounters>>,
    _pad: [u8; 64],
}

/// Per-core shards: each core writes only its own shard (no inter-core
/// contention on the write path); reads aggregate across shards.
#[derive(Debug)]
pub struct ShardedSessionTable {
    shards: Vec<Shard>,
}

impl ShardedSessionTable {
    /// Creates a table with one shard per core.
    ///
    /// # Panics
    /// Panics when `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one shard");
        Self {
            shards: (0..cores)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    _pad: [0; 64],
                })
                .collect(),
        }
    }
}

impl SessionBackend for ShardedSessionTable {
    fn record(&self, core: usize, flow: u64, bytes: u64) {
        let shard = &self.shards[core % self.shards.len()];
        let mut map = shard.map.lock().unwrap();
        let e = map.entry(flow).or_default();
        e.packets += 1;
        e.bytes += bytes;
    }

    fn get(&self, flow: u64) -> SessionCounters {
        let mut total = SessionCounters::default();
        for shard in &self.shards {
            if let Some(c) = shard.map.lock().unwrap().get(&flow) {
                total.packets += c.packets;
                total.bytes += c.bytes;
            }
        }
        total
    }

    fn flows(&self) -> usize {
        let mut flows = std::collections::HashSet::new();
        for shard in &self.shards {
            flows.extend(shard.map.lock().unwrap().keys().copied());
        }
        flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(backend: Arc<dyn SessionBackend>, cores: usize, per_core: u64) {
        let mut handles = Vec::new();
        for core in 0..cores {
            let b = Arc::clone(&backend);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_core {
                    // Everyone hammers flow 1 (write-heavy) plus a private
                    // flow per core.
                    b.record(core, 1, 100);
                    b.record(core, 1000 + core as u64, 1);
                    let _ = i;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn locked_table_counts_exactly_under_concurrency() {
        let t: Arc<dyn SessionBackend> = Arc::new(LockedSessionTable::new());
        exercise(Arc::clone(&t), 4, 10_000);
        let c = t.get(1);
        assert_eq!(c.packets, 40_000);
        assert_eq!(c.bytes, 4_000_000);
        assert_eq!(t.flows(), 5);
    }

    #[test]
    fn sharded_table_counts_exactly_under_concurrency() {
        let t: Arc<dyn SessionBackend> = Arc::new(ShardedSessionTable::new(4));
        exercise(Arc::clone(&t), 4, 10_000);
        let c = t.get(1);
        assert_eq!(c.packets, 40_000, "aggregation must see all shards");
        assert_eq!(t.flows(), 5);
    }

    #[test]
    fn sharded_reads_of_unknown_flow_are_zero() {
        let t = ShardedSessionTable::new(2);
        assert_eq!(t.get(42), SessionCounters::default());
        assert_eq!(t.flows(), 0);
    }

    #[test]
    fn core_ids_beyond_shard_count_wrap() {
        let t = ShardedSessionTable::new(2);
        t.record(7, 5, 10); // shard 1
        assert_eq!(t.get(5).packets, 1);
    }
}
