//! The VM → NC (network container / physical host) mapping table.
//!
//! The largest exact-match table in the gateway: one entry per tenant VM,
//! mapping `(VNI, VM IP)` to the physical host (NC) that currently runs the
//! VM plus the encap parameters. On Sailfish this table's SRAM demand
//! saturated pipelines 1,3 (Tab. 1); on Albatross it lives in DRAM and can
//! grow with tenant count.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Where a VM lives and how to reach it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NcInfo {
    /// Physical host underlay address.
    pub nc_addr: Ipv4Addr,
    /// Tunnel id to encapsulate with (usually the tenant VNI).
    pub encap_vni: u32,
}

/// Exact-match `(vni, vm_ip)` → [`NcInfo`] map.
#[derive(Debug, Default)]
pub struct VmNcMap {
    entries: HashMap<(u32, Ipv4Addr), NcInfo>,
}

impl VmNcMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs or updates a VM's location. Returns the previous location
    /// when the VM migrated.
    pub fn insert(&mut self, vni: u32, vm_ip: Ipv4Addr, info: NcInfo) -> Option<NcInfo> {
        self.entries.insert((vni, vm_ip), info)
    }

    /// Looks up a VM.
    pub fn lookup(&self, vni: u32, vm_ip: Ipv4Addr) -> Option<NcInfo> {
        self.entries.get(&(vni, vm_ip)).copied()
    }

    /// Software-pipelined batch lookup over SoA lanes: `vnis[i]` and
    /// `vm_ips[i]` (raw IPv4 bits) describe lane `i`; one result per lane is
    /// appended to `out`, each identical to [`Self::lookup`].
    ///
    /// Pass 1 materialises every lane's composite `(vni, ip)` key in one
    /// branch-free sweep over stack scratch; pass 2 probes the map back to
    /// back, so the independent probe misses of a burst overlap instead of
    /// forming one dependent chain per packet.
    ///
    /// # Panics
    /// Panics when the lane arrays differ in length.
    pub fn lookup_burst(&self, vnis: &[u32], vm_ips: &[u32], out: &mut Vec<Option<NcInfo>>) {
        assert_eq!(vnis.len(), vm_ips.len(), "SoA lanes must be parallel");
        let mut keys = [(0u32, Ipv4Addr::UNSPECIFIED); 64];
        for (vni_chunk, ip_chunk) in vnis.chunks(64).zip(vm_ips.chunks(64)) {
            let n = vni_chunk.len();
            for (key, (&vni, &ip)) in keys[..n]
                .iter_mut()
                .zip(vni_chunk.iter().zip(ip_chunk.iter()))
            {
                *key = (vni, Ipv4Addr::from(ip));
            }
            for key in &keys[..n] {
                out.push(self.entries.get(key).copied());
            }
        }
    }

    /// Removes a VM (deprovisioning).
    pub fn remove(&mut self, vni: u32, vm_ip: Ipv4Addr) -> Option<NcInfo> {
        self.entries.remove(&(vni, vm_ip))
    }

    /// Number of VM entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nc(last: u8) -> NcInfo {
        NcInfo {
            nc_addr: Ipv4Addr::new(172, 16, 0, last),
            encap_vni: 100,
        }
    }

    #[test]
    fn insert_lookup_per_tenant() {
        let mut m = VmNcMap::new();
        m.insert(1, "10.0.0.5".parse().unwrap(), nc(1));
        m.insert(2, "10.0.0.5".parse().unwrap(), nc(2));
        // Same VM IP in two VPCs resolves independently — multi-tenancy.
        assert_eq!(m.lookup(1, "10.0.0.5".parse().unwrap()), Some(nc(1)));
        assert_eq!(m.lookup(2, "10.0.0.5".parse().unwrap()), Some(nc(2)));
        assert_eq!(m.lookup(3, "10.0.0.5".parse().unwrap()), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn vm_migration_updates_location() {
        let mut m = VmNcMap::new();
        m.insert(1, "10.0.0.9".parse().unwrap(), nc(1));
        let prev = m.insert(1, "10.0.0.9".parse().unwrap(), nc(7));
        assert_eq!(prev, Some(nc(1)));
        assert_eq!(m.lookup(1, "10.0.0.9".parse().unwrap()), Some(nc(7)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lookup_burst_matches_scalar_with_dups_and_misses() {
        let mut m = VmNcMap::new();
        m.insert(1, "10.0.0.5".parse().unwrap(), nc(1));
        m.insert(2, "10.0.0.5".parse().unwrap(), nc(2));
        m.insert(1, "10.0.0.9".parse().unwrap(), nc(3));
        // Lanes include a duplicate key, a VNI miss, and an IP miss.
        let vnis = [1u32, 2, 1, 3, 1, 1];
        let ips: Vec<u32> = [
            "10.0.0.5", "10.0.0.5", "10.0.0.9", "10.0.0.5", "10.9.9.9", "10.0.0.5",
        ]
        .iter()
        .map(|s| u32::from(s.parse::<Ipv4Addr>().unwrap()))
        .collect();
        let mut got = Vec::new();
        m.lookup_burst(&vnis, &ips, &mut got);
        let want: Vec<Option<NcInfo>> = vnis
            .iter()
            .zip(&ips)
            .map(|(&vni, &ip)| m.lookup(vni, Ipv4Addr::from(ip)))
            .collect();
        assert_eq!(got, want);
        assert_eq!(got[0], Some(nc(1)));
        assert_eq!(got[3], None);
        assert_eq!(got[4], None);
        assert_eq!(got[5], got[0]);
    }

    #[test]
    fn remove_deprovisions() {
        let mut m = VmNcMap::new();
        m.insert(5, "10.1.1.1".parse().unwrap(), nc(3));
        assert_eq!(m.remove(5, "10.1.1.1".parse().unwrap()), Some(nc(3)));
        assert!(m.is_empty());
    }
}
