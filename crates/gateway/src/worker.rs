//! The data-core execution model.
//!
//! Each GW pod dedicates *data cores* to packet processing (44 of 46 in the
//! evaluation setup) and a couple of *ctrl cores* to the control plane. A
//! [`DataCore`] couples an RX queue (fed by the NIC's DMA into this core's
//! queue pair) with a busy-until clock and utilization accounting — the
//! instrument behind Fig. 10's per-core utilization dispersion.

use albatross_fpga::pkt::NicPacket;
use albatross_fpga::PktBurst;
use albatross_sim::queue::Enqueue;
use albatross_sim::{BoundedQueue, SimTime};

/// One data core.
#[derive(Debug)]
pub struct DataCore {
    id: usize,
    rx: BoundedQueue<NicPacket>,
    busy_until: SimTime,
    processed: u64,
    busy_ns_total: u64,
    window_busy_ns: u64,
}

impl DataCore {
    /// Creates a core with an RX queue of `rx_depth` descriptors.
    pub fn new(id: usize, rx_depth: usize) -> Self {
        Self {
            id,
            rx: BoundedQueue::new(rx_depth),
            busy_until: SimTime::ZERO,
            processed: 0,
            busy_ns_total: 0,
            window_busy_ns: 0,
        }
    }

    /// Core id within the pod.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueues a packet into the core's RX queue (tail-drop when full —
    /// "RX/TX queue congestion" is one of §4.1's HOL causes).
    pub fn enqueue(&mut self, pkt: NicPacket) -> Enqueue {
        self.rx.push(pkt)
    }

    /// True when the core can start new work at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// When the core finishes its current packet.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Enqueues a whole burst into the RX queue, draining the burst.
    /// Returns how many packets were accepted; the rest were tail-dropped
    /// (counted in [`Self::rx_drops`]), exactly as per-packet
    /// [`Self::enqueue`] calls would.
    pub fn enqueue_burst(&mut self, burst: &mut PktBurst) -> usize {
        let mut accepted = 0;
        for pkt in burst.drain() {
            if self.rx.push(pkt).is_ok() {
                accepted += 1;
            }
        }
        accepted
    }

    /// Pops the next packet to process, if any.
    pub fn take_next(&mut self) -> Option<NicPacket> {
        self.rx.pop()
    }

    /// Pops packets in FIFO order into `out` until it is full or the RX
    /// queue is empty; returns how many were taken.
    pub fn take_burst(&mut self, out: &mut PktBurst) -> usize {
        let mut taken = 0;
        while !out.is_full() {
            let Some(pkt) = self.rx.pop() else { break };
            // Cannot overflow: the loop guard checked for room.
            let _ = out.push(pkt);
            taken += 1;
        }
        taken
    }

    /// Pending RX occupancy.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }

    /// Marks the core busy for `cost_ns` starting at `now`; returns the
    /// completion time.
    ///
    /// # Panics
    /// Panics if called while the core is still busy — that is a scheduler
    /// bug in the caller.
    pub fn begin(&mut self, now: SimTime, cost_ns: u64) -> SimTime {
        assert!(self.idle_at(now), "core {} double-scheduled", self.id);
        self.busy_until = now + cost_ns;
        self.processed += 1;
        self.busy_ns_total += cost_ns;
        self.window_busy_ns += cost_ns;
        self.busy_until
    }

    /// Packets processed since creation.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Packets tail-dropped at this core's RX queue.
    pub fn rx_drops(&self) -> u64 {
        self.rx.total_dropped()
    }

    /// Total busy nanoseconds since creation.
    pub fn busy_ns_total(&self) -> u64 {
        self.busy_ns_total
    }

    /// Consumes the current sampling window's busy time and returns the
    /// utilization over a window of `window_ns` (clamped to 1.0).
    pub fn sample_utilization(&mut self, window_ns: u64) -> f64 {
        let busy = std::mem::take(&mut self.window_busy_ns);
        (busy as f64 / window_ns as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_packet::flow::IpProtocol;
    use albatross_packet::FiveTuple;

    fn pkt(id: u64) -> NicPacket {
        let tuple = FiveTuple {
            src_ip: "10.0.0.1".parse().unwrap(),
            dst_ip: "10.0.0.2".parse().unwrap(),
            src_port: 1,
            dst_port: 2,
            protocol: IpProtocol::Udp,
        };
        NicPacket::data(id, tuple, None, 256, SimTime::ZERO)
    }

    #[test]
    fn begin_makes_core_busy_until_completion() {
        let mut c = DataCore::new(0, 8);
        let done = c.begin(SimTime::from_micros(10), 700);
        assert_eq!(done, SimTime::from_nanos(10_700));
        assert!(!c.idle_at(SimTime::from_nanos(10_699)));
        assert!(c.idle_at(done));
        assert_eq!(c.processed(), 1);
    }

    #[test]
    #[should_panic(expected = "double-scheduled")]
    fn double_scheduling_is_a_bug() {
        let mut c = DataCore::new(3, 8);
        c.begin(SimTime::ZERO, 1_000);
        c.begin(SimTime::from_nanos(500), 1_000);
    }

    #[test]
    fn rx_queue_is_fifo_with_drop_accounting() {
        let mut c = DataCore::new(0, 2);
        assert!(c.enqueue(pkt(1)).is_ok());
        assert!(c.enqueue(pkt(2)).is_ok());
        assert!(!c.enqueue(pkt(3)).is_ok());
        assert_eq!(c.rx_drops(), 1);
        assert_eq!(c.take_next().unwrap().id, 1);
        assert_eq!(c.backlog(), 1);
    }

    #[test]
    fn burst_enqueue_and_take_match_scalar_fifo() {
        let mut scalar = DataCore::new(0, 3);
        let mut burst = DataCore::new(0, 3);
        for i in 0..5 {
            let _ = scalar.enqueue(pkt(i));
        }
        let mut b = PktBurst::with_capacity(5);
        for i in 0..5 {
            b.push(pkt(i)).unwrap();
        }
        assert_eq!(burst.enqueue_burst(&mut b), 3);
        assert!(b.is_empty(), "enqueue_burst must drain the burst");
        assert_eq!(burst.rx_drops(), scalar.rx_drops());
        assert_eq!(burst.backlog(), scalar.backlog());
        let mut out = PktBurst::with_capacity(2);
        assert_eq!(burst.take_burst(&mut out), 2);
        let ids: Vec<u64> = out.drain().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(burst.take_burst(&mut out), 1);
        assert_eq!(out.as_slice()[0].id, 2);
        assert_eq!(burst.take_burst(&mut out), 0, "queue drained");
    }

    #[test]
    fn utilization_sampling_resets_each_window() {
        let mut c = DataCore::new(0, 8);
        c.begin(SimTime::ZERO, 400_000);
        // 1 ms window, 0.4 ms busy → 40%.
        assert!((c.sample_utilization(1_000_000) - 0.4).abs() < 1e-12);
        // Window consumed: next sample is 0 until more work runs.
        assert_eq!(c.sample_utilization(1_000_000), 0.0);
        assert_eq!(c.busy_ns_total(), 400_000);
    }

    #[test]
    fn utilization_clamps_at_one() {
        let mut c = DataCore::new(0, 8);
        c.begin(SimTime::ZERO, 5_000_000);
        assert_eq!(c.sample_utilization(1_000_000), 1.0);
    }
}
