//! Ordered 5-tuple ACL rules.
//!
//! Security-group filtering in the gateway services. ACL denials are one of
//! the CPU-side packet-drop sources that would cause reorder-queue HOL
//! blocking if not signalled back with the drop flag (§4.1 HOL handling #2,
//! Fig. 12) — the Fig. 12 harness installs deny rules here.

use std::ops::RangeInclusive;

use albatross_packet::flow::IpProtocol;
use albatross_packet::FiveTuple;

use crate::lpm::Prefix;

/// Rule verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclAction {
    /// Forward the packet.
    Allow,
    /// Drop the packet (GW pod sets the PLB drop flag).
    Deny,
}

/// One ACL rule; `None` fields are wildcards. First match wins.
#[derive(Debug, Clone)]
pub struct AclRule {
    /// Source prefix match.
    pub src: Option<Prefix>,
    /// Destination prefix match.
    pub dst: Option<Prefix>,
    /// Destination port range match.
    pub dst_ports: Option<RangeInclusive<u16>>,
    /// Protocol match.
    pub protocol: Option<IpProtocol>,
    /// Verdict on match.
    pub action: AclAction,
}

impl AclRule {
    /// A rule matching everything with the given action.
    pub fn any(action: AclAction) -> Self {
        Self {
            src: None,
            dst: None,
            dst_ports: None,
            protocol: None,
            action,
        }
    }

    fn matches(&self, t: &FiveTuple) -> bool {
        self.src.is_none_or(|p| p.contains(t.src_ip))
            && self.dst.is_none_or(|p| p.contains(t.dst_ip))
            && self
                .dst_ports
                .as_ref()
                .is_none_or(|r| r.contains(&t.dst_port))
            && self.protocol.is_none_or(|p| t.protocol == p)
    }
}

/// An ordered rule list with a default action.
#[derive(Debug)]
pub struct AclTable {
    rules: Vec<AclRule>,
    default_action: AclAction,
    allowed: u64,
    denied: u64,
}

impl AclTable {
    /// Creates a table with the given default (applied when nothing
    /// matches).
    pub fn new(default_action: AclAction) -> Self {
        Self {
            rules: Vec::new(),
            default_action,
            allowed: 0,
            denied: 0,
        }
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: AclRule) {
        self.rules.push(rule);
    }

    /// Evaluates a packet.
    pub fn evaluate(&mut self, tuple: &FiveTuple) -> AclAction {
        let action = self
            .rules
            .iter()
            .find(|r| r.matches(tuple))
            .map_or(self.default_action, |r| r.action);
        match action {
            AclAction::Allow => self.allowed += 1,
            AclAction::Deny => self.denied += 1,
        }
        action
    }

    /// Number of rules installed.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Packets allowed so far.
    pub fn allowed(&self) -> u64 {
        self.allowed
    }

    /// Packets denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src: &str, dst: &str, dst_port: u16, proto: IpProtocol) -> FiveTuple {
        FiveTuple {
            src_ip: src.parse().unwrap(),
            dst_ip: dst.parse().unwrap(),
            src_port: 40_000,
            dst_port,
            protocol: proto,
        }
    }

    #[test]
    fn first_match_wins_over_later_rules() {
        let mut acl = AclTable::new(AclAction::Allow);
        acl.push(AclRule {
            src: Some(Prefix::new("10.0.0.0".parse().unwrap(), 24)),
            dst: None,
            dst_ports: None,
            protocol: None,
            action: AclAction::Deny,
        });
        acl.push(AclRule::any(AclAction::Allow));
        assert_eq!(
            acl.evaluate(&tuple("10.0.0.7", "1.1.1.1", 80, IpProtocol::Tcp)),
            AclAction::Deny
        );
        assert_eq!(
            acl.evaluate(&tuple("10.0.1.7", "1.1.1.1", 80, IpProtocol::Tcp)),
            AclAction::Allow
        );
        assert_eq!(acl.denied(), 1);
        assert_eq!(acl.allowed(), 1);
    }

    #[test]
    fn port_range_and_protocol_match() {
        let mut acl = AclTable::new(AclAction::Deny);
        acl.push(AclRule {
            src: None,
            dst: None,
            dst_ports: Some(80..=443),
            protocol: Some(IpProtocol::Tcp),
            action: AclAction::Allow,
        });
        assert_eq!(
            acl.evaluate(&tuple("2.2.2.2", "3.3.3.3", 443, IpProtocol::Tcp)),
            AclAction::Allow
        );
        assert_eq!(
            acl.evaluate(&tuple("2.2.2.2", "3.3.3.3", 443, IpProtocol::Udp)),
            AclAction::Deny,
            "protocol mismatch must fall through"
        );
        assert_eq!(
            acl.evaluate(&tuple("2.2.2.2", "3.3.3.3", 8080, IpProtocol::Tcp)),
            AclAction::Deny,
            "port outside range must fall through"
        );
    }

    #[test]
    fn empty_table_uses_default() {
        let mut acl = AclTable::new(AclAction::Allow);
        assert!(acl.is_empty());
        assert_eq!(
            acl.evaluate(&tuple("9.9.9.9", "8.8.8.8", 53, IpProtocol::Udp)),
            AclAction::Allow
        );
    }
}
