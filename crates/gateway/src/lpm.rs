//! Longest-prefix-match routing table.
//!
//! The VXLAN routing table is the capacity headline of Tab. 6: Albatross
//! holds >10 M LPM rules in DRAM where Sailfish's SRAM caps at ~0.2 M and
//! DPUs lack LPM resources entirely (§2.2). The implementation is a
//! per-prefix-length hash scheme: one compact map per length, probed from
//! /32 downward. Lookups are O(33) hash probes worst case, memory is ~10
//! bytes per route — both properties the >10 M scale test exercises.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An IPv4 prefix (address + length) with host bits guaranteed zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        let bits = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Self { bits, len }
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is the default route, not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the default route `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (u32::from(addr) & (u32::MAX << (32 - self.len))) == self.bits
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// A longest-prefix-match table mapping prefixes to a `u32` next-hop id.
#[derive(Debug)]
pub struct LpmTable {
    /// maps[len] : masked address → next hop.
    maps: [HashMap<u32, u32>; 33],
    len: usize,
}

impl Default for LpmTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LpmTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            maps: std::array::from_fn(|_| HashMap::new()),
            len: 0,
        }
    }

    /// Inserts or replaces a route. Returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Prefix, next_hop: u32) -> Option<u32> {
        let prev = self.maps[prefix.len as usize].insert(prefix.bits, next_hop);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes a route, returning its next hop if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<u32> {
        let prev = self.maps[prefix.len as usize].remove(&prefix.bits);
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<u32> {
        let raw = u32::from(addr);
        for len in (1..=32u32).rev() {
            let map = &self.maps[len as usize];
            if map.is_empty() {
                continue;
            }
            let key = raw & (u32::MAX << (32 - len));
            if let Some(&nh) = map.get(&key) {
                return Some(nh);
            }
        }
        self.maps[0].get(&0).copied()
    }

    /// Exact-match lookup of a specific prefix.
    pub fn get(&self, prefix: Prefix) -> Option<u32> {
        self.maps[prefix.len as usize].get(&prefix.bits).copied()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str, len: u8) -> Prefix {
        Prefix::new(s.parse().unwrap(), len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0", 8), 1);
        t.insert(p("10.1.0.0", 16), 2);
        t.insert(p("10.1.2.0", 24), 3);
        t.insert(p("0.0.0.0", 0), 99);
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()), Some(3));
        assert_eq!(t.lookup("10.1.9.9".parse().unwrap()), Some(2));
        assert_eq!(t.lookup("10.200.0.1".parse().unwrap()), Some(1));
        assert_eq!(t.lookup("192.168.0.1".parse().unwrap()), Some(99));
    }

    #[test]
    fn no_default_route_means_miss() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0", 8), 1);
        assert_eq!(t.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn host_routes_match_exactly() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.5", 32), 7);
        t.insert(p("10.0.0.0", 24), 1);
        assert_eq!(t.lookup("10.0.0.5".parse().unwrap()), Some(7));
        assert_eq!(t.lookup("10.0.0.6".parse().unwrap()), Some(1));
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(p("10.0.0.0", 24), 1), None);
        assert_eq!(t.insert(p("10.0.0.0", 24), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0", 24)), Some(2));
        assert_eq!(t.remove(p("10.0.0.0", 24)), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.0.0.0", 24)), None);
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let a = p("10.1.2.3", 16);
        let b = p("10.1.0.0", 16);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.1.0.0/16");
        assert!(a.contains("10.1.255.255".parse().unwrap()));
        assert!(!a.contains("10.2.0.0".parse().unwrap()));
    }

    #[test]
    fn default_prefix_contains_everything() {
        let d = p("0.0.0.0", 0);
        assert!(d.is_default());
        assert!(d.contains("255.255.255.255".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn overlong_prefix_rejected() {
        let _ = p("10.0.0.0", 33);
    }

    #[test]
    fn hundred_thousand_routes_lookup_correctly() {
        // Scale sanity (the >10M check lives in the Tab. 6 bench where the
        // memory budget is accounted): 100K /24s + spot checks.
        let mut t = LpmTable::new();
        for i in 0..100_000u32 {
            let addr = Ipv4Addr::from(0x0A00_0000 | (i << 8));
            t.insert(Prefix::new(addr, 24), i);
        }
        assert_eq!(t.len(), 100_000);
        for i in (0..100_000u32).step_by(997) {
            let probe = Ipv4Addr::from(0x0A00_0000 | (i << 8) | 0x42);
            assert_eq!(t.lookup(probe), Some(i));
        }
    }
}
