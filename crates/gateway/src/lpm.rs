//! Longest-prefix-match routing table.
//!
//! The VXLAN routing table is the capacity headline of Tab. 6: Albatross
//! holds >10 M LPM rules in DRAM where Sailfish's SRAM caps at ~0.2 M and
//! DPUs lack LPM resources entirely (§2.2). The implementation is a
//! per-prefix-length hash scheme: one compact map per length, probed from
//! /32 downward. Lookups are O(33) hash probes worst case, memory is ~10
//! bytes per route — both properties the >10 M scale test exercises.

use std::collections::HashMap;
use std::net::Ipv4Addr;

/// An IPv4 prefix (address + length) with host bits guaranteed zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    bits: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let raw = u32::from(addr);
        let bits = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Self { bits, len }
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is the default route, not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the default route `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// True when `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        (u32::from(addr) & (u32::MAX << (32 - self.len))) == self.bits
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// A longest-prefix-match table mapping prefixes to a `u32` next-hop id.
#[derive(Debug)]
pub struct LpmTable {
    /// maps[len] : masked address → next hop.
    maps: [HashMap<u32, u32>; 33],
    /// Bit `l` set iff `maps[l]` holds at least one route. Lookups walk the
    /// set bits from /32 downward instead of scanning all 33 maps — with the
    /// handful of populated lengths a real RIB has, that turns the O(33)
    /// sweep into O(populated lengths).
    populated: u64,
    len: usize,
}

impl Default for LpmTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LpmTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            maps: std::array::from_fn(|_| HashMap::new()),
            populated: 0,
            len: 0,
        }
    }

    /// Inserts or replaces a route. Returns the previous next hop, if any.
    pub fn insert(&mut self, prefix: Prefix, next_hop: u32) -> Option<u32> {
        let prev = self.maps[prefix.len as usize].insert(prefix.bits, next_hop);
        self.populated |= 1u64 << prefix.len;
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes a route, returning its next hop if present.
    pub fn remove(&mut self, prefix: Prefix) -> Option<u32> {
        let prev = self.maps[prefix.len as usize].remove(&prefix.bits);
        if prev.is_some() {
            self.len -= 1;
            if self.maps[prefix.len as usize].is_empty() {
                self.populated &= !(1u64 << prefix.len);
            }
        }
        prev
    }

    /// The populated-length bitmap: bit `l` set iff any `/l` route exists.
    pub fn populated_lengths(&self) -> u64 {
        self.populated
    }

    /// Longest-prefix lookup, counting hash probes into `probes`.
    #[inline]
    fn lookup_counted(&self, raw: u32, probes: &mut u32) -> Option<u32> {
        let mut bits = self.populated & !1;
        while bits != 0 {
            let len = 63 - bits.leading_zeros();
            bits &= !(1u64 << len);
            let key = raw & (u32::MAX << (32 - len));
            *probes += 1;
            if let Some(&nh) = self.maps[len as usize].get(&key) {
                return Some(nh);
            }
        }
        if self.populated & 1 != 0 {
            *probes += 1;
            return self.maps[0].get(&0).copied();
        }
        None
    }

    /// Longest-prefix lookup.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<u32> {
        let mut probes = 0;
        self.lookup_counted(u32::from(addr), &mut probes)
    }

    /// [`Self::lookup`] returning `(next_hop, hash probes performed)` — the
    /// counting shim the probe-budget tests (and capacity ledgers) use to
    /// pin that only populated prefix lengths are visited.
    pub fn lookup_probes(&self, addr: Ipv4Addr) -> (Option<u32>, u32) {
        let mut probes = 0;
        let nh = self.lookup_counted(u32::from(addr), &mut probes);
        (nh, probes)
    }

    /// Software-pipelined batch lookup: appends one result per address to
    /// `out`, in input order, each identical to [`Self::lookup`] on that
    /// address.
    ///
    /// Per populated prefix length (longest first), pass 1 computes every
    /// lane's masked key in one branch-free sweep, then pass 2 probes the
    /// length's map for all still-unresolved lanes back to back — the
    /// hide-the-miss pattern: consecutive independent probes instead of one
    /// dependent probe chain per packet. Lanes are processed in chunks of
    /// 64 with a resolution bitmask, so the scratch lives on the stack.
    pub fn lookup_burst(&self, addrs: &[u32], out: &mut Vec<Option<u32>>) {
        for chunk in addrs.chunks(64) {
            self.lookup_chunk(chunk, out);
        }
    }

    fn lookup_chunk(&self, addrs: &[u32], out: &mut Vec<Option<u32>>) {
        let n = addrs.len();
        let base = out.len();
        out.resize(base + n, None);
        let lanes = &mut out[base..];
        let mut unresolved: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut keys = [0u32; 64];
        let mut bits = self.populated & !1;
        while bits != 0 && unresolved != 0 {
            let len = 63 - bits.leading_zeros();
            bits &= !(1u64 << len);
            let mask = u32::MAX << (32 - len);
            // Pass 1: masked keys for every lane (cheaper branch-free than
            // testing which lanes still need this length).
            for (key, addr) in keys[..n].iter_mut().zip(addrs) {
                *key = addr & mask;
            }
            // Pass 2: probe unresolved lanes back to back.
            let map = &self.maps[len as usize];
            let mut pending = unresolved;
            while pending != 0 {
                let i = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                if let Some(&nh) = map.get(&keys[i]) {
                    lanes[i] = Some(nh);
                    unresolved &= !(1u64 << i);
                }
            }
        }
        if unresolved != 0 && self.populated & 1 != 0 {
            let default = self.maps[0].get(&0).copied();
            while unresolved != 0 {
                let i = unresolved.trailing_zeros() as usize;
                unresolved &= unresolved - 1;
                lanes[i] = default;
            }
        }
    }

    /// Exact-match lookup of a specific prefix.
    pub fn get(&self, prefix: Prefix) -> Option<u32> {
        self.maps[prefix.len as usize].get(&prefix.bits).copied()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str, len: u8) -> Prefix {
        Prefix::new(s.parse().unwrap(), len)
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0", 8), 1);
        t.insert(p("10.1.0.0", 16), 2);
        t.insert(p("10.1.2.0", 24), 3);
        t.insert(p("0.0.0.0", 0), 99);
        assert_eq!(t.lookup("10.1.2.3".parse().unwrap()), Some(3));
        assert_eq!(t.lookup("10.1.9.9".parse().unwrap()), Some(2));
        assert_eq!(t.lookup("10.200.0.1".parse().unwrap()), Some(1));
        assert_eq!(t.lookup("192.168.0.1".parse().unwrap()), Some(99));
    }

    #[test]
    fn no_default_route_means_miss() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0", 8), 1);
        assert_eq!(t.lookup("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn host_routes_match_exactly() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.5", 32), 7);
        t.insert(p("10.0.0.0", 24), 1);
        assert_eq!(t.lookup("10.0.0.5".parse().unwrap()), Some(7));
        assert_eq!(t.lookup("10.0.0.6".parse().unwrap()), Some(1));
    }

    #[test]
    fn insert_replace_remove() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(p("10.0.0.0", 24), 1), None);
        assert_eq!(t.insert(p("10.0.0.0", 24), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0", 24)), Some(2));
        assert_eq!(t.remove(p("10.0.0.0", 24)), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(p("10.0.0.0", 24)), None);
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let a = p("10.1.2.3", 16);
        let b = p("10.1.0.0", 16);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "10.1.0.0/16");
        assert!(a.contains("10.1.255.255".parse().unwrap()));
        assert!(!a.contains("10.2.0.0".parse().unwrap()));
    }

    #[test]
    fn default_prefix_contains_everything() {
        let d = p("0.0.0.0", 0);
        assert!(d.is_default());
        assert!(d.contains("255.255.255.255".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "> 32")]
    fn overlong_prefix_rejected() {
        let _ = p("10.0.0.0", 33);
    }

    #[test]
    fn probe_count_tracks_populated_lengths_only() {
        let mut t = LpmTable::new();
        assert_eq!(t.lookup_probes("10.0.0.1".parse().unwrap()), (None, 0));

        t.insert(p("10.1.2.0", 24), 3);
        t.insert(p("10.1.0.0", 16), 2);
        t.insert(p("0.0.0.0", 0), 99);
        assert_eq!(t.populated_lengths(), (1 << 24) | (1 << 16) | 1);
        // A /24 hit stops after one probe; a /16 hit needs two; a full miss
        // probes both lengths plus the default route — never all 33 maps.
        assert_eq!(t.lookup_probes("10.1.2.9".parse().unwrap()), (Some(3), 1));
        assert_eq!(t.lookup_probes("10.1.9.9".parse().unwrap()), (Some(2), 2));
        assert_eq!(
            t.lookup_probes("192.168.0.1".parse().unwrap()),
            (Some(99), 3)
        );

        // Removing the last /16 route clears its bit and its probe.
        t.remove(p("10.1.0.0", 16));
        assert_eq!(t.populated_lengths(), (1 << 24) | 1);
        assert_eq!(
            t.lookup_probes("192.168.0.1".parse().unwrap()),
            (Some(99), 2)
        );

        // Removing one of two same-length routes keeps the bit (and probe).
        t.insert(p("10.1.3.0", 24), 4);
        t.remove(p("10.1.2.0", 24));
        assert_eq!(t.populated_lengths(), (1 << 24) | 1);
        assert_eq!(t.lookup_probes("10.1.3.7".parse().unwrap()), (Some(4), 1));

        // Dropping the default route leaves misses probe-free once no
        // lengths remain populated.
        t.remove(p("10.1.3.0", 24));
        t.remove(p("0.0.0.0", 0));
        assert_eq!(t.populated_lengths(), 0);
        assert_eq!(t.lookup_probes("10.1.3.7".parse().unwrap()), (None, 0));
    }

    #[test]
    fn lookup_burst_matches_scalar_with_dups_and_misses() {
        let mut t = LpmTable::new();
        t.insert(p("10.0.0.0", 8), 1);
        t.insert(p("10.1.0.0", 16), 2);
        t.insert(p("10.1.2.0", 24), 3);
        let addrs: Vec<u32> = [
            "10.1.2.3",
            "10.1.9.9",
            "10.200.0.1",
            "192.168.0.1",
            "10.1.2.3",
        ]
        .iter()
        .map(|s| u32::from(s.parse::<Ipv4Addr>().unwrap()))
        .collect();
        let mut out = Vec::new();
        t.lookup_burst(&addrs, &mut out);
        let scalar: Vec<Option<u32>> = addrs.iter().map(|&a| t.lookup(Ipv4Addr::from(a))).collect();
        assert_eq!(out, scalar);
        assert_eq!(out, vec![Some(3), Some(2), Some(1), None, Some(3)]);
    }

    #[test]
    fn hundred_thousand_routes_lookup_correctly() {
        // Scale sanity (the >10M check lives in the Tab. 6 bench where the
        // memory budget is accounted): 100K /24s + spot checks.
        let mut t = LpmTable::new();
        for i in 0..100_000u32 {
            let addr = Ipv4Addr::from(0x0A00_0000 | (i << 8));
            t.insert(Prefix::new(addr, 24), i);
        }
        assert_eq!(t.len(), 100_000);
        for i in (0..100_000u32).step_by(997) {
            let probe = Ipv4Addr::from(0x0A00_0000 | (i << 8) | 0x42);
            assert_eq!(t.lookup(probe), Some(i));
        }
    }
}
