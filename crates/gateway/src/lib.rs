//! Cloud gateway services and forwarding tables.
//!
//! The GW pod's CPU side: the 1st-gen x86 gateway code Albatross reuses
//! wholesale (§3.1 "the CPU can reuse the entire code from the 1st x86
//! gateway"). This crate implements:
//!
//! * [`lpm::LpmTable`] — longest-prefix-match routing, DRAM-resident, sized
//!   for >10 M VXLAN routes (the Tab. 6 capacity advantage over Sailfish's
//!   0.2 M).
//! * [`vmnc::VmNcMap`] — the exact-match VM→NC mapping that dominates
//!   Sailfish's SRAM (Tab. 1).
//! * [`acl::AclTable`] — ordered 5-tuple security rules (the drop source in
//!   the Fig. 12 drop-flag experiment).
//! * [`nat::SnatTable`] — stateful source NAT with port allocation and
//!   session aging (the §2.1 self-updating-table case Tofino cannot do).
//! * [`session::{LockedSessionTable, ShardedSessionTable}`] — the
//!   write-heavy/write-light stateful-NF state backends behind the §7
//!   scaling lesson (lock + cache-coherence contention vs per-core shards).
//! * [`services::ServicePipeline`] — the four Tab. 2 services as lookup
//!   chains over [`albatross_mem`]'s cache/DRAM model, which is what makes
//!   VPC-Internet slower than VPC-VPC (more tables, longer code).
//! * [`worker::DataCore`] — the data-core execution model with utilization
//!   accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod flowstate;
pub mod lpm;
pub mod nat;
pub mod services;
pub mod session;
pub mod vmnc;
pub mod worker;

pub use acl::{AclAction, AclTable};
pub use flowstate::{FlowStateConfig, FlowStateEngine, FlowVerdict};
pub use lpm::LpmTable;
pub use nat::SnatTable;
pub use services::{ServiceKind, ServicePipeline};
pub use vmnc::VmNcMap;
pub use worker::DataCore;
