//! The four gateway services of Tab. 2 as lookup-chain cost models.
//!
//! "Even for a single workload gateway, multiple cascading table entries are
//! typically involved" (§4.2). Each service is a fixed chain of table
//! lookups over the [`albatross_mem`] working set plus a base compute cost;
//! per-packet latency *emerges* from the cache model: the same flow touches
//! the same entries (temporal locality), a 500K-flow mix against several GB
//! of tables yields the paper's 30–45% L3 hit rate, and VPC-Internet's
//! longer chain makes it the slowest service (Tab. 3's 81.6 Mpps vs
//! 120+ Mpps).
//!
//! The optional ACL-deny knob drops a configurable slice of flows mid-chain
//! — the packet-loss source for the Fig. 12 drop-flag experiment. The
//! optional extra-jitter model adds the §4.1 "corner case code branch"
//! excursions that stress the reorder timeout.

use albatross_mem::tables::CloudGatewayTables;
use albatross_mem::{MemorySystem, TableId};
use albatross_sim::{LatencyModel, SimRng};

/// The four production gateway services (Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// VM ↔ VM in the same VPC.
    VpcVpc,
    /// VM → Internet (SNAT; the longest chain).
    VpcInternet,
    /// VM → customer IDC over hybrid cloud.
    VpcIdc,
    /// VM → vendor cloud services (log stores, databases, …).
    VpcCloudService,
}

impl ServiceKind {
    /// All four services, in Tab. 2 order.
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::VpcVpc,
        ServiceKind::VpcInternet,
        ServiceKind::VpcIdc,
        ServiceKind::VpcCloudService,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::VpcVpc => "VPC-VPC",
            ServiceKind::VpcInternet => "VPC-Internet",
            ServiceKind::VpcIdc => "VPC-IDC",
            ServiceKind::VpcCloudService => "VPC-CloudService",
        }
    }
}

/// What the service decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketAction {
    /// Forward to the egress path.
    Forward,
    /// Drop (ACL denial); under PLB the pod sets the meta drop flag.
    Drop,
}

/// Result of processing one packet.
#[derive(Debug, Clone, Copy)]
pub struct ProcessOutcome {
    /// CPU time charged, in nanoseconds.
    pub latency_ns: u64,
    /// Forward or drop.
    pub action: PacketAction,
}

#[derive(Debug, Clone, Copy)]
struct LookupStep {
    table: TableId,
    /// Distinguishes multiple lookups into the same table.
    salt: u64,
}

/// One service's processing pipeline.
#[derive(Debug, Clone)]
pub struct ServicePipeline {
    kind: ServiceKind,
    steps: Vec<LookupStep>,
    base_ns: u64,
    /// Entry size per step's table, cached to avoid re-deriving.
    entry_bytes: Vec<u32>,
    /// Drop flows whose hash is ≡ 0 (mod m) — ACL denial injection.
    acl_drop_modulus: Option<u64>,
    /// Optional software-stack jitter beyond the memory model.
    extra_jitter: Option<LatencyModel>,
}

impl ServicePipeline {
    /// Builds the production chain for `kind` over the given tables.
    pub fn new(kind: ServiceKind, tables: &CloudGatewayTables) -> Self {
        let step = |table: TableId, salt: u64| LookupStep { table, salt };
        // Chain lengths calibrated so that, at the paper's ~35% L3 hit
        // rate, per-packet cost reproduces the Tab. 3 rates on 88 cores.
        let (steps, base_ns) = match kind {
            ServiceKind::VpcVpc => (
                vec![
                    step(tables.tenant_cfg, 0),
                    step(tables.vm_nc, 1),
                    step(tables.vxlan_lpm, 2),
                    step(tables.acl, 3),
                ],
                251,
            ),
            ServiceKind::VpcInternet => (
                vec![
                    step(tables.tenant_cfg, 0),
                    step(tables.acl, 1),
                    step(tables.inet_route, 2),
                    step(tables.session, 3),
                    step(tables.vm_nc, 4),
                    step(tables.vxlan_lpm, 5),
                    step(tables.inet_route, 6),
                ],
                220,
            ),
            ServiceKind::VpcIdc => (
                vec![
                    step(tables.tenant_cfg, 0),
                    step(tables.acl, 1),
                    step(tables.vxlan_lpm, 2),
                    step(tables.vm_nc, 3),
                    step(tables.vxlan_lpm, 4),
                ],
                215,
            ),
            ServiceKind::VpcCloudService => (
                vec![
                    step(tables.tenant_cfg, 0),
                    step(tables.vm_nc, 1),
                    step(tables.vxlan_lpm, 2),
                    step(tables.acl, 3),
                ],
                265,
            ),
        };
        let entry_bytes = steps
            .iter()
            .map(|s| tables.ws.entry_bytes(s.table))
            .collect();
        Self {
            kind,
            steps,
            base_ns,
            entry_bytes,
            acl_drop_modulus: None,
            extra_jitter: None,
        }
    }

    /// Service kind.
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }

    /// Number of table lookups in the chain.
    pub fn chain_len(&self) -> usize {
        self.steps.len()
    }

    /// Enables ACL denial for flows with `flow_hash % m == 0`.
    pub fn with_acl_drop_modulus(mut self, m: u64) -> Self {
        assert!(m > 0, "modulus must be positive");
        self.acl_drop_modulus = Some(m);
        self
    }

    /// Adds software-stack jitter on top of memory costs.
    pub fn with_extra_jitter(mut self, model: LatencyModel) -> Self {
        self.extra_jitter = Some(model);
        self
    }

    /// Processes one packet of the flow identified by `flow_hash` on
    /// `core`, charging every lookup through the memory system. The
    /// working-set accessor `ws` maps `(table, index)` to addresses.
    pub fn process(
        &self,
        core: usize,
        flow_hash: u64,
        tables: &CloudGatewayTables,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
    ) -> ProcessOutcome {
        self.process_offloaded(core, flow_hash, false, tables, mem, rng)
    }

    /// [`process`](Self::process) for the tiered co-offload path: when
    /// `session_in_hw` is set the flow's session state lives in the
    /// FPGA/DPU tier, so session-table steps are skipped entirely — no
    /// memory charge, no cache touch. The per-tier CPU saving is emergent:
    /// chains without a session step (e.g. VPC→VPC) cost the same either
    /// way, VPC→Internet drops its session lookup.
    pub fn process_offloaded(
        &self,
        core: usize,
        flow_hash: u64,
        session_in_hw: bool,
        tables: &CloudGatewayTables,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
    ) -> ProcessOutcome {
        let mut latency = self.base_ns;
        let mut action = PacketAction::Forward;
        for (i, step) in self.steps.iter().enumerate() {
            if session_in_hw && step.table == tables.session {
                continue;
            }
            // Per-flow, per-step deterministic entry index: the same flow
            // re-reads the same entries (that is what the cache can exploit).
            let idx = mix(flow_hash, step.salt);
            let addr = tables.ws.entry_addr(step.table, idx);
            latency += mem.read_entry(core, addr, self.entry_bytes[i]);
            if let Some(m) = self.acl_drop_modulus {
                // The ACL is evaluated where it sits in the chain; denial
                // aborts the remaining lookups.
                if step.table == tables.acl && flow_hash.is_multiple_of(m) {
                    action = PacketAction::Drop;
                    break;
                }
            }
        }
        if let Some(model) = &self.extra_jitter {
            latency += model.sample(rng);
        }
        ProcessOutcome {
            latency_ns: latency,
            action,
        }
    }

    /// Processes a burst of packets (one flow hash per packet) on `core`,
    /// appending one outcome per packet to `out`.
    ///
    /// Data-oriented: the chain runs *step-major* over 64-lane chunks. For
    /// each step, pass 1 computes every lane's entry address (pure mixing,
    /// no state), then pass 2 issues the memory-model charges for all still
    /// active lanes back to back — the batched access order that lets
    /// consecutive lanes of one step share cache lines and overlap misses,
    /// instead of interleaving each packet's whole chain. ACL denial
    /// deactivates a lane after its ACL charge (same per-lane charges as
    /// scalar [`Self::process`]); jitter is drawn once per lane, in lane
    /// order, so the RNG stream matches the scalar loop draw for draw.
    ///
    /// Per-lane `action`s are identical to scalar processing and the total
    /// number of memory accesses is the same; individual `latency_ns`
    /// values may differ because the shared cache sees the accesses in the
    /// batched order.
    pub fn process_burst(
        &self,
        core: usize,
        flow_hashes: &[u64],
        tables: &CloudGatewayTables,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
        out: &mut Vec<ProcessOutcome>,
    ) {
        out.reserve(flow_hashes.len());
        for chunk in flow_hashes.chunks(64) {
            self.process_chunk(core, chunk, tables, mem, rng, out);
        }
    }

    /// One ≤64-lane chunk of [`Self::process_burst`].
    fn process_chunk(
        &self,
        core: usize,
        chunk: &[u64],
        tables: &CloudGatewayTables,
        mem: &mut MemorySystem,
        rng: &mut SimRng,
        out: &mut Vec<ProcessOutcome>,
    ) {
        let n = chunk.len();
        let mut latency = [self.base_ns; 64];
        let mut addrs = [0u64; 64];
        let mut active: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let all = active;
        for (i, step) in self.steps.iter().enumerate() {
            // Pass 1: pure per-lane entry addresses for this step.
            for (addr, &h) in addrs[..n].iter_mut().zip(chunk) {
                *addr = tables.ws.entry_addr(step.table, mix(h, step.salt));
            }
            // Pass 2: charge the still-active lanes back to back.
            let acl_m = self.acl_drop_modulus.filter(|_| step.table == tables.acl);
            let mut pending = active;
            while pending != 0 {
                let lane = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                latency[lane] += mem.read_entry(core, addrs[lane], self.entry_bytes[i]);
                if let Some(m) = acl_m {
                    if chunk[lane].is_multiple_of(m) {
                        // Denied: the lane is charged for the ACL read it
                        // just did, then sits out the rest of the chain.
                        active &= !(1u64 << lane);
                    }
                }
            }
        }
        for (lane, &lane_lat) in latency.iter().enumerate().take(n) {
            let mut lat = lane_lat;
            if let Some(model) = &self.extra_jitter {
                lat += model.sample(rng);
            }
            let dropped = all & !active & (1u64 << lane) != 0;
            out.push(ProcessOutcome {
                latency_ns: lat,
                action: if dropped {
                    PacketAction::Drop
                } else {
                    PacketAction::Forward
                },
            });
        }
    }
}

/// splitmix-style 64-bit mix of flow hash and step salt.
fn mix(h: u64, salt: u64) -> u64 {
    let mut z = h ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_mem::{DramModel, SharedCache};

    fn mem_small() -> MemorySystem {
        MemorySystem::new(SharedCache::new(1024 * 1024, 8), DramModel::new(4800))
    }

    fn tables_small() -> CloudGatewayTables {
        CloudGatewayTables::scaled(0.001)
    }

    #[test]
    fn vpc_internet_has_the_longest_chain() {
        let t = tables_small();
        let lens: Vec<usize> = ServiceKind::ALL
            .iter()
            .map(|&k| ServicePipeline::new(k, &t).chain_len())
            .collect();
        let inet = ServicePipeline::new(ServiceKind::VpcInternet, &t).chain_len();
        assert!(lens.iter().all(|&l| l <= inet));
        assert!(inet > ServicePipeline::new(ServiceKind::VpcVpc, &t).chain_len());
    }

    #[test]
    fn repeat_packets_of_a_flow_get_cheaper() {
        // Second packet of the same flow hits cache on all lookups.
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcVpc, &t);
        let mut mem = mem_small();
        let mut rng = SimRng::seed_from(1);
        let first = p.process(0, 42, &t, &mut mem, &mut rng);
        let second = p.process(0, 42, &t, &mut mem, &mut rng);
        assert!(second.latency_ns < first.latency_ns);
        assert_eq!(first.action, PacketAction::Forward);
    }

    #[test]
    fn hardware_resident_session_skips_the_session_lookup() {
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcInternet, &t);
        let mut rng = SimRng::seed_from(3);
        // Fresh memory each side: the offloaded chain issues one fewer
        // cold lookup, so it is strictly cheaper.
        let mut mem_cpu = mem_small();
        let cpu = p.process_offloaded(0, 42, false, &t, &mut mem_cpu, &mut rng);
        let mut mem_hw = mem_small();
        let hw = p.process_offloaded(0, 42, true, &t, &mut mem_hw, &mut rng);
        assert!(
            hw.latency_ns < cpu.latency_ns,
            "session step must be skipped"
        );
        // And the flag-off path is exactly `process`.
        let mut mem_a = mem_small();
        let mut mem_b = mem_small();
        let mut rng_a = SimRng::seed_from(4);
        let mut rng_b = SimRng::seed_from(4);
        let a = p.process(1, 7, &t, &mut mem_a, &mut rng_a);
        let b = p.process_offloaded(1, 7, false, &t, &mut mem_b, &mut rng_b);
        assert_eq!(a.latency_ns, b.latency_ns);
        // A chain without a session step is unaffected by the flag.
        let vpc = ServicePipeline::new(ServiceKind::VpcVpc, &t);
        let mut mem_c = mem_small();
        let mut mem_d = mem_small();
        let c = vpc.process_offloaded(0, 9, false, &t, &mut mem_c, &mut rng);
        let d = vpc.process_offloaded(0, 9, true, &t, &mut mem_d, &mut rng);
        assert_eq!(c.latency_ns, d.latency_ns);
    }

    #[test]
    fn vpc_internet_costs_more_than_vpc_vpc() {
        let t = tables_small();
        let vpc = ServicePipeline::new(ServiceKind::VpcVpc, &t);
        let inet = ServicePipeline::new(ServiceKind::VpcInternet, &t);
        let mut mem = mem_small();
        let mut rng = SimRng::seed_from(2);
        // Cold-cache comparison over many flows.
        let mut vpc_total = 0;
        let mut inet_total = 0;
        for f in 0..500u64 {
            vpc_total += vpc.process(0, f, &t, &mut mem, &mut rng).latency_ns;
            inet_total += inet
                .process(0, f + 1_000_000, &t, &mut mem, &mut rng)
                .latency_ns;
        }
        assert!(
            inet_total as f64 > vpc_total as f64 * 1.3,
            "inet {inet_total} vs vpc {vpc_total}"
        );
    }

    #[test]
    fn acl_modulus_drops_designated_flows() {
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcVpc, &t).with_acl_drop_modulus(4);
        let mut mem = mem_small();
        let mut rng = SimRng::seed_from(3);
        assert_eq!(
            p.process(0, 8, &t, &mut mem, &mut rng).action,
            PacketAction::Drop
        );
        assert_eq!(
            p.process(0, 9, &t, &mut mem, &mut rng).action,
            PacketAction::Forward
        );
    }

    #[test]
    fn drop_aborts_remaining_lookups() {
        // A dropped flow's latency must be below a forwarded flow's
        // cold-cache latency since the chain is cut at the ACL.
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcInternet, &t).with_acl_drop_modulus(1);
        let full = ServicePipeline::new(ServiceKind::VpcInternet, &t);
        let mut mem_a = mem_small();
        let mut mem_b = mem_small();
        let mut rng = SimRng::seed_from(4);
        let dropped = p.process(0, 77, &t, &mut mem_a, &mut rng);
        let forwarded = full.process(0, 77, &t, &mut mem_b, &mut rng);
        assert_eq!(dropped.action, PacketAction::Drop);
        assert!(dropped.latency_ns < forwarded.latency_ns);
    }

    #[test]
    fn extra_jitter_inflates_latency() {
        let t = tables_small();
        let base = ServicePipeline::new(ServiceKind::VpcVpc, &t);
        let jittered = ServicePipeline::new(ServiceKind::VpcVpc, &t)
            .with_extra_jitter(LatencyModel::Fixed(5_000));
        let mut mem_a = mem_small();
        let mut mem_b = mem_small();
        let mut rng = SimRng::seed_from(5);
        let a = base.process(0, 1, &t, &mut mem_a, &mut rng).latency_ns;
        let b = jittered.process(0, 1, &t, &mut mem_b, &mut rng).latency_ns;
        assert_eq!(b, a + 5_000);
    }

    #[test]
    fn process_burst_matches_scalar_actions_and_charges() {
        // The step-major burst path issues the SAME per-lane memory charges
        // as scalar processing, just in batched order: actions must be
        // identical, and so must the total access count (an ACL-denied lane
        // must not be charged for steps after its denial). Latencies may
        // legitimately differ — the shared cache sees a different order.
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcInternet, &t)
            .with_acl_drop_modulus(4)
            .with_extra_jitter(LatencyModel::Fixed(100));
        let mut mem_a = mem_small();
        let mut mem_b = mem_small();
        let mut rng_a = SimRng::seed_from(7);
        let mut rng_b = SimRng::seed_from(7);
        // >64 hashes so the chunking boundary is crossed.
        let hashes: Vec<u64> = (0..100).collect();
        let scalar: Vec<ProcessOutcome> = hashes
            .iter()
            .map(|&h| p.process(0, h, &t, &mut mem_a, &mut rng_a))
            .collect();
        let mut burst = Vec::new();
        p.process_burst(0, &hashes, &t, &mut mem_b, &mut rng_b, &mut burst);
        assert_eq!(scalar.len(), burst.len());
        for (i, (a, b)) in scalar.iter().zip(&burst).enumerate() {
            assert_eq!(a.action, b.action, "lane {i}");
        }
        let accesses = |m: &MemorySystem| m.cache().total_hits() + m.cache().total_misses();
        assert_eq!(accesses(&mem_a), accesses(&mem_b));
        assert!(
            burst.iter().any(|o| o.action == PacketAction::Drop),
            "test must exercise ACL-denied lanes"
        );
    }

    #[test]
    fn process_burst_of_one_is_bit_identical_to_scalar() {
        // The burst_size=1 fidelity anchor: a single-lane burst degenerates
        // to the scalar chain exactly, latency included.
        let t = tables_small();
        let p = ServicePipeline::new(ServiceKind::VpcVpc, &t)
            .with_acl_drop_modulus(4)
            .with_extra_jitter(LatencyModel::Fixed(9));
        let mut mem_a = mem_small();
        let mut mem_b = mem_small();
        let mut rng_a = SimRng::seed_from(8);
        let mut rng_b = SimRng::seed_from(8);
        for h in 0..64u64 {
            let scalar = p.process(0, h, &t, &mut mem_a, &mut rng_a);
            let mut one = Vec::new();
            p.process_burst(0, &[h], &t, &mut mem_b, &mut rng_b, &mut one);
            assert_eq!(one[0].latency_ns, scalar.latency_ns, "hash {h}");
            assert_eq!(one[0].action, scalar.action, "hash {h}");
        }
    }

    #[test]
    fn service_names_match_paper() {
        assert_eq!(ServiceKind::VpcInternet.name(), "VPC-Internet");
        assert_eq!(ServiceKind::ALL.len(), 4);
    }
}
