//! Hardware flow-state tracking with insertion as a first-class resource.
//!
//! XenoFlow's core finding (BlueField-3 DNS load balancing), transplanted
//! onto Albatross: under short flows the gateway's ceiling is not packets
//! per second but *flow insertions* per second — the hardware flow table
//! installs entries at a bounded rate, and a single-packet flow pays the
//! install on its only packet. This module models that resource exactly:
//!
//! * the resident-flow map is an [`albatross_mem::flowtab::FlowTable`]
//!   (capacity-bounded, deterministically hashed, batched probes);
//! * insertion rate is a token bucket (the PR 9
//!   [`InstallBudget`] machinery):
//!   first-sight flows that win a token install and fast-path; flows that
//!   don't — budget drained by churn, or table full — stay on the CPU
//!   slow path for this packet;
//! * idle entries age out through an
//!   [`albatross_mem::flowtab::ExpiryWheel`] on the sampling tick,
//!   amortized `O(expired)`, with same-tick reuse of the reclaimed slots
//!   (expire-then-install, as everywhere else in the repo).
//!
//! The CPS ceiling this produces is `min(install_rate, capacity /
//! flow_lifetime)` — the two regimes the `cps_frontier` bench maps. The
//! budget also doubles as the churn-flood limiter: a SYN/DNS flood consumes
//! install tokens, not table slots, so resident (established) flows keep
//! their fast path — the table-churn-as-attack-vector exhibit.
//!
//! [`FlowStateEngine::classify_burst`] is the batched entry point the pod
//! simulation drives: pass 1 probes the whole arrival batch through
//! [`FlowTable::lookup_burst`] (hashes first, probes back-to-back — PR 6's
//! miss-hiding shape), pass 2 resolves lanes in arrival order. Verdicts
//! are defined to be identical to N scalar [`FlowStateEngine::on_packet`]
//! calls, so burst geometry can never change one output byte.

use albatross_fpga::tier::InstallBudget;
use albatross_mem::flowtab::{ExpiryWheel, FlowTable, InsertOutcome, SlotRef, WheelDecision};
use albatross_packet::FiveTuple;
use albatross_sim::{SimTime, TokenBucket};

/// How the flow table disposed of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowVerdict {
    /// The flow is resident in hardware: fast path.
    Resident,
    /// First sight; an entry was installed (consumed an install token).
    Installed,
    /// First sight but not installed — install budget exhausted or table
    /// full. The packet takes the CPU slow path; the flow may install on a
    /// later packet.
    SlowPath,
}

/// Configuration of the hardware flow-state resource model.
#[derive(Debug, Clone)]
pub struct FlowStateConfig {
    /// Hardware flow-table slots.
    pub capacity: usize,
    /// Inactivity timeout before an entry is reclaimed.
    pub idle_timeout: SimTime,
    /// Hardware insertion-rate budget; `None` = unmetered.
    pub install_budget: Option<InstallBudget>,
    /// Extra per-packet cost when the packet triggered an install.
    pub install_ns: u64,
    /// Extra per-packet cost on the CPU slow path (miss, not installed).
    pub slowpath_ns: u64,
}

impl FlowStateConfig {
    /// Production-plausible sizing: the 256K-entry BRAM table of the
    /// offload engine, a 150K/s insert budget (the measured BlueField-3
    /// class rate XenoFlow centers on), 1 s idle timeout. Ceiling:
    /// `min(150K, 256K / 1s) = 150K` CPS — budget-bound.
    pub fn production() -> Self {
        Self {
            capacity: 256 * 1024,
            idle_timeout: SimTime::from_secs(1),
            install_budget: Some(InstallBudget {
                installs_per_sec: 150_000.0,
                burst: 32.0,
            }),
            install_ns: 600,
            slowpath_ns: 1_800,
        }
    }
}

/// The per-pod hardware flow table plus its insertion budget and expiry
/// wheel. See the [module docs](self).
#[derive(Debug)]
pub struct FlowStateEngine {
    table: FlowTable<FiveTuple, SimTime>,
    wheel: ExpiryWheel,
    budget: Option<TokenBucket>,
    idle_timeout: SimTime,
    install_ns: u64,
    slowpath_ns: u64,
    hits: u64,
    installs: u64,
    deferred: u64,
    expired: u64,
    /// Scratch for `classify_burst` pass 1, reused across bursts.
    slots: Vec<Option<SlotRef>>,
}

impl FlowStateEngine {
    /// Builds an engine from `cfg`.
    pub fn new(cfg: &FlowStateConfig) -> Self {
        Self {
            table: FlowTable::with_capacity(cfg.capacity),
            wheel: ExpiryWheel::for_timeout(cfg.idle_timeout),
            budget: cfg
                .install_budget
                .map(|b| TokenBucket::new(b.installs_per_sec, b.burst)),
            idle_timeout: cfg.idle_timeout,
            install_ns: cfg.install_ns,
            slowpath_ns: cfg.slowpath_ns,
            hits: 0,
            installs: 0,
            deferred: 0,
            expired: 0,
            slots: Vec::new(),
        }
    }

    fn miss(&mut self, tuple: &FiveTuple, now: SimTime) -> FlowVerdict {
        // Budget first: a full window/table must still charge the flood to
        // the limiter, and a won token on a full table is the same loss a
        // real NIC pays when its insert queue beats the reclaim sweep.
        if let Some(b) = &mut self.budget {
            if !b.allow_packet(now) {
                self.deferred += 1;
                return FlowVerdict::SlowPath;
            }
        }
        match self.table.insert(*tuple, now) {
            InsertOutcome::Created(slot) => {
                self.wheel
                    .schedule(slot, now.saturating_add_ns(self.idle_timeout.as_nanos()));
                self.installs += 1;
                FlowVerdict::Installed
            }
            InsertOutcome::Updated(_) => unreachable!("miss path sees first-sight flows only"),
            InsertOutcome::Full => {
                self.deferred += 1;
                FlowVerdict::SlowPath
            }
        }
    }

    /// Scalar per-packet classification: refresh a resident flow, or try
    /// to install a first-sight one.
    pub fn on_packet(&mut self, tuple: &FiveTuple, now: SimTime) -> FlowVerdict {
        if let Some(last) = self.table.get_mut(tuple) {
            *last = now;
            self.hits += 1;
            return FlowVerdict::Resident;
        }
        self.miss(tuple, now)
    }

    /// Batched classification of one arrival burst, in arrival order.
    /// `out` is cleared and filled with one verdict per tuple; results are
    /// identical to N [`FlowStateEngine::on_packet`] calls (batch-internal
    /// duplicates resolve sequentially: the second packet of a flow whose
    /// first packet installed earlier in the same burst is a `Resident`
    /// hit).
    pub fn classify_burst(
        &mut self,
        tuples: &[FiveTuple],
        now: SimTime,
        out: &mut Vec<FlowVerdict>,
    ) {
        let mut slots = std::mem::take(&mut self.slots);
        self.table.lookup_burst(tuples, &mut slots);
        out.clear();
        for (tuple, slot) in tuples.iter().zip(slots.iter()) {
            match slot {
                Some(s) => {
                    let (_, last) = self.table.at_mut(*s).expect("no removals inside a burst");
                    *last = now;
                    self.hits += 1;
                    out.push(FlowVerdict::Resident);
                }
                // Pass-1 miss: resolve through the scalar path, which
                // re-probes — an earlier lane of this burst may have
                // installed the same flow.
                None => out.push(self.on_packet(tuple, now)),
            }
        }
        self.slots = slots;
    }

    /// Ages out idle entries (amortized `O(expired)` via the wheel);
    /// reclaimed slots are installable in the same tick. Returns how many
    /// entries were reclaimed.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let Self {
            table,
            wheel,
            idle_timeout,
            ..
        } = self;
        let timeout = idle_timeout.as_nanos();
        let mut freed = 0usize;
        wheel.advance(now, |slot| match table.at(slot) {
            None => WheelDecision::Expire,
            Some((_, last)) => {
                if now.saturating_since(*last) > timeout {
                    table.remove_slot(slot);
                    freed += 1;
                    WheelDecision::Expire
                } else {
                    WheelDecision::KeepUntil(last.saturating_add_ns(timeout))
                }
            }
        });
        self.expired += freed as u64;
        freed
    }

    /// Extra per-packet nanoseconds a verdict costs the data core.
    pub fn verdict_ns(&self, verdict: FlowVerdict) -> u64 {
        match verdict {
            FlowVerdict::Resident => 0,
            FlowVerdict::Installed => self.install_ns,
            FlowVerdict::SlowPath => self.slowpath_ns,
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no flows are resident.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Packets that fast-pathed on a resident entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries installed.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// First-sight packets that could not install (budget or capacity).
    pub fn deferred(&self) -> u64 {
        self.deferred
    }

    /// Entries reclaimed by the expiry wheel.
    pub fn expired(&self) -> u64 {
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_packet::flow::IpProtocol;

    fn flow(i: u32) -> FiveTuple {
        FiveTuple {
            src_ip: std::net::Ipv4Addr::from(0x0a00_0000 | (i >> 12)),
            dst_ip: "172.16.0.53".parse().unwrap(),
            src_port: (i & 0xffff) as u16,
            dst_port: 53,
            protocol: IpProtocol::Udp,
        }
    }

    fn unmetered(capacity: usize) -> FlowStateConfig {
        FlowStateConfig {
            capacity,
            idle_timeout: SimTime::from_millis(10),
            install_budget: None,
            install_ns: 600,
            slowpath_ns: 1_800,
        }
    }

    #[test]
    fn first_packet_installs_second_fast_paths() {
        let mut e = FlowStateEngine::new(&unmetered(64));
        assert_eq!(e.on_packet(&flow(1), SimTime::ZERO), FlowVerdict::Installed);
        assert_eq!(
            e.on_packet(&flow(1), SimTime::from_micros(5)),
            FlowVerdict::Resident
        );
        assert_eq!((e.installs(), e.hits(), e.deferred()), (1, 1, 0));
    }

    #[test]
    fn install_budget_defers_to_slow_path() {
        let mut cfg = unmetered(1024);
        cfg.install_budget = Some(InstallBudget {
            installs_per_sec: 1_000.0,
            burst: 2.0,
        });
        let mut e = FlowStateEngine::new(&cfg);
        // Two tokens, then dry at t=0.
        assert_eq!(e.on_packet(&flow(1), SimTime::ZERO), FlowVerdict::Installed);
        assert_eq!(e.on_packet(&flow(2), SimTime::ZERO), FlowVerdict::Installed);
        assert_eq!(e.on_packet(&flow(3), SimTime::ZERO), FlowVerdict::SlowPath);
        // Resident flows are untouched by the flood — the limiter protects
        // the table, not the other way round.
        assert_eq!(e.on_packet(&flow(1), SimTime::ZERO), FlowVerdict::Resident);
        assert_eq!(e.deferred(), 1);
        // Tokens refill with time; the deferred flow installs on retry.
        assert_eq!(
            e.on_packet(&flow(3), SimTime::from_millis(2)),
            FlowVerdict::Installed
        );
    }

    #[test]
    fn expiry_reclaims_capacity_same_tick() {
        let mut e = FlowStateEngine::new(&unmetered(2));
        assert_eq!(e.on_packet(&flow(1), SimTime::ZERO), FlowVerdict::Installed);
        assert_eq!(e.on_packet(&flow(2), SimTime::ZERO), FlowVerdict::Installed);
        assert_eq!(e.on_packet(&flow(3), SimTime::ZERO), FlowVerdict::SlowPath);
        let t = SimTime::from_millis(50);
        assert_eq!(e.expire(t), 2);
        assert_eq!(e.on_packet(&flow(3), t), FlowVerdict::Installed);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn burst_classification_equals_scalar_with_duplicates() {
        let tuples: Vec<FiveTuple> = (0..48).map(|i| flow(i % 20)).collect();
        let cfg = FlowStateConfig {
            capacity: 16, // smaller than the flow domain: Full fires too
            idle_timeout: SimTime::from_millis(10),
            install_budget: Some(InstallBudget {
                installs_per_sec: 100_000.0,
                burst: 8.0,
            }),
            install_ns: 600,
            slowpath_ns: 1_800,
        };
        let now = SimTime::from_micros(3);
        let mut burst_engine = FlowStateEngine::new(&cfg);
        let mut burst_out = Vec::new();
        burst_engine.classify_burst(&tuples, now, &mut burst_out);
        let mut scalar_engine = FlowStateEngine::new(&cfg);
        let scalar_out: Vec<FlowVerdict> = tuples
            .iter()
            .map(|t| scalar_engine.on_packet(t, now))
            .collect();
        assert_eq!(burst_out, scalar_out);
        assert_eq!(burst_engine.len(), scalar_engine.len());
        assert_eq!(
            (
                burst_engine.hits(),
                burst_engine.installs(),
                burst_engine.deferred()
            ),
            (
                scalar_engine.hits(),
                scalar_engine.installs(),
                scalar_engine.deferred()
            ),
        );
    }
}
