//! Golden test for advertise-before-withdraw migration (§7), coupled to
//! the real switch control plane.
//!
//! Pins the full phase sequence of a mid-flow VIP migration — including
//! what the *switch* sees at every event boundary — and every
//! out-of-order error path. The central claim: there is **no event
//! window** in which neither pod holds the VIP, and the switch never
//! processes a withdraw for it.

use std::net::Ipv4Addr;

use albatross_bgp::msg::NlriPrefix;
use albatross_bgp::proxy::BgpProxy;
use albatross_bgp::switchcp::SwitchControlPlane;
use albatross_container::migration::{
    Migration, MigrationError, MigrationPhase, VALIDATION_PERIOD,
};
use albatross_sim::SimTime;

const PEER: u32 = 0;

fn vip() -> NlriPrefix {
    NlriPrefix::new(Ipv4Addr::new(203, 0, 113, 77), 32)
}

fn nh(pod: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, pod)
}

/// Proxy + switch with the old pod (1) serving the VIP, switch converged.
fn coupled_setup() -> (BgpProxy, SwitchControlPlane, Migration) {
    let mut proxy = BgpProxy::new();
    let mut switch = SwitchControlPlane::new();
    proxy.pod_advertise(1, vip(), nh(1));
    for msg in proxy.take_upstream_updates() {
        switch.apply_update(PEER, &msg);
    }
    (proxy, switch, Migration::new(vip(), 1, 2))
}

/// Forwards the proxy's pending upstream UPDATEs into the switch,
/// asserting none of them is a withdraw, and that after each message the
/// switch still routes the VIP. Returns how many messages flowed.
fn forward_asserting_no_gap(proxy: &mut BgpProxy, switch: &mut SwitchControlPlane) -> usize {
    let msgs = proxy.take_upstream_updates();
    for msg in &msgs {
        if let albatross_bgp::msg::BgpMessage::Update { withdrawn, .. } = msg {
            assert!(
                withdrawn.is_empty(),
                "migration must never send an upstream withdraw, got {withdrawn:?}"
            );
        }
        switch.apply_update(PEER, msg);
        assert!(
            switch.rib().best(vip()).is_some(),
            "switch lost the VIP route mid-migration"
        );
    }
    msgs.len()
}

#[test]
fn golden_phase_sequence_with_no_unserved_window() {
    let (mut proxy, mut switch, mut m) = coupled_setup();

    // Boundary 0: before anything happens. Old pod serves; switch routes
    // to the old pod's next hop.
    assert_eq!(m.phase(), MigrationPhase::Preparing);
    assert!(proxy.serves(vip()));
    assert_eq!(switch.rib().best(vip()).expect("routed").next_hop, nh(1));

    // Boundary 1: the new pod advertises at t=5s. Both pods serve at the
    // proxy; the switch's single route flips its next hop to the new pod
    // (same peer re-advertisement) — no withdraw, no gap.
    let t_adv = SimTime::from_secs(5);
    m.advertise_new(&mut proxy, nh(2), t_adv)
        .expect("first advertise");
    assert_eq!(m.phase(), MigrationPhase::Validating);
    assert_eq!(forward_asserting_no_gap(&mut proxy, &mut switch), 1);
    assert_eq!(switch.rib().best(vip()).expect("routed").next_hop, nh(2));
    assert!(proxy.serves(vip()));
    assert_eq!(
        proxy.rib().len(),
        2,
        "both pods hold the VIP while validating"
    );

    // Boundary 2: mid-validation. Still both serving, still routed.
    let t_mid = SimTime::from_secs(20);
    match m.withdraw_old(&mut proxy, t_mid) {
        Err(MigrationError::ValidationIncomplete { remaining }) => {
            assert_eq!(remaining, SimTime::from_secs(15), "5s in, 30s period");
        }
        other => panic!("expected incomplete validation, got {other:?}"),
    }
    assert_eq!(
        m.phase(),
        MigrationPhase::Validating,
        "failed step changes nothing"
    );
    assert!(proxy.serves(vip()));

    // Boundary 3: exactly at the validation boundary (advertise + 30s).
    let t_done = SimTime::from_nanos(t_adv.as_nanos() + VALIDATION_PERIOD.as_nanos());
    m.withdraw_old(&mut proxy, t_done)
        .expect("validation complete");
    assert_eq!(m.phase(), MigrationPhase::Complete);
    // The old pod left silently: nothing flows upstream, the switch keeps
    // routing to the new pod.
    assert_eq!(forward_asserting_no_gap(&mut proxy, &mut switch), 0);
    assert_eq!(switch.rib().best(vip()).expect("routed").next_hop, nh(2));
    let best = proxy.rib().best(vip()).expect("VIP still served");
    assert_eq!(best.peer, 2, "only the new pod remains");
    assert_eq!(proxy.rib().len(), 1);
}

#[test]
fn withdraw_before_advertise_is_rejected_and_harmless() {
    let (mut proxy, mut switch, mut m) = coupled_setup();
    assert_eq!(
        m.withdraw_old(&mut proxy, SimTime::from_secs(100)),
        Err(MigrationError::WithdrawBeforeAdvertise)
    );
    assert_eq!(m.phase(), MigrationPhase::Preparing);
    // The rejected call must not have touched routing state.
    assert_eq!(forward_asserting_no_gap(&mut proxy, &mut switch), 0);
    assert_eq!(switch.rib().best(vip()).expect("routed").next_hop, nh(1));
}

#[test]
fn early_withdraw_counts_down_the_remaining_validation() {
    let (mut proxy, _switch, mut m) = coupled_setup();
    m.advertise_new(&mut proxy, nh(2), SimTime::from_secs(10))
        .unwrap();
    // Sweep several early attempts; the remaining time must track `now`.
    for (now_s, remaining_s) in [(10u64, 30u64), (11, 29), (25, 15), (39, 1)] {
        match m.withdraw_old(&mut proxy, SimTime::from_secs(now_s)) {
            Err(MigrationError::ValidationIncomplete { remaining }) => {
                assert_eq!(remaining, SimTime::from_secs(remaining_s));
            }
            other => panic!("expected incomplete at {now_s}s, got {other:?}"),
        }
        assert!(proxy.serves(vip()), "rejections never unserve the VIP");
    }
    // One nanosecond short still counts as incomplete.
    let almost = SimTime::from_nanos(SimTime::from_secs(40).as_nanos() - 1);
    assert!(matches!(
        m.withdraw_old(&mut proxy, almost),
        Err(MigrationError::ValidationIncomplete { remaining }) if remaining == SimTime::from_nanos(1)
    ));
}

#[test]
fn out_of_order_steps_hit_wrong_phase() {
    let (mut proxy, _switch, mut m) = coupled_setup();
    m.advertise_new(&mut proxy, nh(2), SimTime::ZERO).unwrap();
    // Double advertise while validating.
    assert_eq!(
        m.advertise_new(&mut proxy, nh(2), SimTime::from_secs(1)),
        Err(MigrationError::WrongPhase)
    );
    m.withdraw_old(&mut proxy, SimTime::from_secs(30)).unwrap();
    // Everything is terminal after completion.
    assert_eq!(
        m.withdraw_old(&mut proxy, SimTime::from_secs(31)),
        Err(MigrationError::WrongPhase)
    );
    assert_eq!(
        m.advertise_new(&mut proxy, nh(2), SimTime::from_secs(32)),
        Err(MigrationError::WrongPhase)
    );
    assert_eq!(m.phase(), MigrationPhase::Complete);
}
