//! The containerized gateway platform (§3.2, §5, appendix B).
//!
//! Albatross hosts multiple single-role gateways as *GW pods* on one
//! physical server, partitioning NIC resources (VFs, queue pairs, reorder
//! queues) among them and orchestrating them with a small ACK-like control
//! plane. This crate also hosts [`simrun::PodSimulation`], the
//! discrete-event driver that wires the whole reproduction together —
//! workload source → FPGA NIC pipeline → PLB/RSS engine → data cores →
//! service pipelines over the memory model → reorder → egress — and powers
//! most of the benchmark harnesses.
//!
//! * [`pod`] — GW pod specs and state.
//! * [`server`] — the dual-NUMA Albatross server with per-pod NIC resource
//!   partitioning (reorder queues ∝ cores, 4 VFs per pod).
//! * [`orchestrator`] — pod placement and 10-second elasticity.
//! * [`migration`] — advertise-before-withdraw traffic migration (§7).
//! * [`cost`] — the AZ buildout cost/power model (Fig. 15, Tab. 6).
//! * [`simrun`] — the end-to-end pod simulation.
//! * [`az`] — the coupled AZ resilience simulation: shared switch control
//!   plane + per-server BGP proxies + per-pod BFD, driven by scripted
//!   failure drills, with per-drill delivery/latency/convergence reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod az;
pub mod cost;
pub mod fleet;
pub mod migration;
pub mod orchestrator;
pub mod pod;
pub mod server;
pub mod simrun;

pub use az::{AzConfig, AzReport, AzSimulation, DrillKind, DrillReport, DrillSpec};
pub use cost::{AzCostModel, GatewayGeneration};
pub use fleet::{FleetConfig, FleetResult, FleetRunner, Scenario, ScenarioFleet};
pub use orchestrator::Orchestrator;
pub use pod::{GwPodSpec, GwRole};
pub use server::AlbatrossServer;
pub use simrun::{PodSimulation, ShardedPodSimulation, SimConfig, SimReport};
