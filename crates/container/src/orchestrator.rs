//! ACK-lite pod orchestration.
//!
//! A minimal scheduler over a fleet of Albatross servers: place pods (first
//! fit across servers, NUMA-aware within a server), and model the 10-second
//! pod bring-up that gives Albatross its elasticity headline (Tab. 6:
//! "10 seconds" vs Sailfish's "days").

use albatross_sim::SimTime;

use crate::pod::GwPodSpec;
use crate::server::{AlbatrossServer, PlacementError};

/// Time to pull, start and configure a GW pod (§3.2/§7).
pub const POD_BRINGUP: SimTime = SimTime::from_secs(10);

/// A scheduled pod.
#[derive(Debug)]
pub struct ScheduledPod {
    /// Fleet-wide pod id.
    pub id: u32,
    /// Server index hosting the pod.
    pub server: usize,
    /// When scheduling was requested.
    pub requested_at: SimTime,
    /// When the pod is ready to advertise routes and take traffic.
    pub ready_at: SimTime,
}

/// The fleet orchestrator.
pub struct Orchestrator {
    servers: Vec<AlbatrossServer>,
    pods: Vec<ScheduledPod>,
    next_id: u32,
}

impl Orchestrator {
    /// Creates an orchestrator over `n` production servers.
    pub fn with_servers(n: usize) -> Self {
        Self {
            servers: (0..n).map(|_| AlbatrossServer::production()).collect(),
            pods: Vec::new(),
            next_id: 0,
        }
    }

    /// Schedules a pod at `now`: first server that fits. Returns the
    /// scheduled record (ready 10 s later).
    pub fn schedule(
        &mut self,
        spec: &GwPodSpec,
        now: SimTime,
    ) -> Result<&ScheduledPod, PlacementError> {
        let mut last_err = PlacementError::NoCores {
            requested: spec.total_cores(),
        };
        for (idx, server) in self.servers.iter_mut().enumerate() {
            match server.place(spec) {
                Ok(_) => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.pods.push(ScheduledPod {
                        id,
                        server: idx,
                        requested_at: now,
                        ready_at: now + POD_BRINGUP.as_nanos(),
                    });
                    return Ok(self.pods.last().expect("just pushed"));
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Schedules a pod on a specific server at `now` (no spill to other
    /// servers — AZ drills pin respawns and scale-outs to a chosen host).
    pub fn schedule_on(
        &mut self,
        server: usize,
        spec: &GwPodSpec,
        now: SimTime,
    ) -> Result<&ScheduledPod, PlacementError> {
        self.servers[server].place(spec)?;
        let id = self.next_id;
        self.next_id += 1;
        self.pods.push(ScheduledPod {
            id,
            server,
            requested_at: now,
            ready_at: now + POD_BRINGUP.as_nanos(),
        });
        Ok(self.pods.last().expect("just pushed"))
    }

    /// Pods scheduled so far.
    pub fn pods(&self) -> &[ScheduledPod] {
        &self.pods
    }

    /// Pods ready to serve at `now`.
    pub fn ready_pods(&self, now: SimTime) -> usize {
        self.pods.iter().filter(|p| p.ready_at <= now).count()
    }

    /// Free cores across the fleet.
    pub fn free_cores(&self) -> usize {
        self.servers.iter().map(AlbatrossServer::free_cores).sum()
    }

    /// The servers (for inspection).
    pub fn servers(&self) -> &[AlbatrossServer] {
        &self.servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::GwRole;

    fn spec() -> GwPodSpec {
        // 24 cores: two pods per 48-core NUMA node, four per server.
        GwPodSpec {
            role: GwRole::Igw,
            data_cores: 22,
            ctrl_cores: 2,
        }
    }

    #[test]
    fn pod_is_ready_after_ten_seconds() {
        let mut orch = Orchestrator::with_servers(2);
        let t = SimTime::from_secs(100);
        let pod = orch.schedule(&spec(), t).unwrap();
        assert_eq!(pod.ready_at, SimTime::from_secs(110));
        assert_eq!(orch.ready_pods(SimTime::from_secs(109)), 0);
        assert_eq!(orch.ready_pods(SimTime::from_secs(110)), 1);
    }

    #[test]
    fn pods_spill_to_next_server() {
        let mut orch = Orchestrator::with_servers(2);
        // 4 × 24-core pods fill server 0 (96 cores), the 5th spills.
        for _ in 0..4 {
            let p = orch.schedule(&spec(), SimTime::ZERO).unwrap();
            assert_eq!(p.server, 0);
        }
        let fifth = orch.schedule(&spec(), SimTime::ZERO).unwrap();
        assert_eq!(fifth.server, 1);
    }

    #[test]
    fn fleet_exhaustion_errors() {
        let mut orch = Orchestrator::with_servers(1);
        for _ in 0..4 {
            orch.schedule(&spec(), SimTime::ZERO).unwrap();
        }
        assert!(orch.schedule(&spec(), SimTime::ZERO).is_err());
        assert_eq!(orch.free_cores(), 0);
    }

    #[test]
    fn elasticity_beats_physical_clusters_by_orders_of_magnitude() {
        // Tab. 6: 10 s vs days. One day = 86,400 s.
        assert!(POD_BRINGUP.as_nanos() * 1000 < SimTime::from_secs(86_400).as_nanos());
    }
}
