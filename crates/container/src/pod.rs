//! GW pod specification and state.
//!
//! "A single-role gateway can be deployed within a single GW pod" (§3.2).
//! A pod requests data cores, ctrl cores, and a service role; the platform
//! derives its NIC resource share (reorder queues proportional to cores,
//! 4 VFs, one queue pair per data core).

use albatross_gateway::services::ServiceKind;

/// The eight gateway cluster roles an AZ deploys (§6: "XGW, IGW, VGW,
/// etc."), mapped onto the service kinds the data plane implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GwRole {
    /// Cross-VPC gateway.
    Xgw,
    /// Internet gateway.
    Igw,
    /// VPN/IDC gateway.
    Vgw,
    /// Cloud-service gateway.
    Cgw,
    /// Load-balancer gateway.
    Slb,
    /// NAT gateway.
    Nat,
    /// Transit router.
    Tr,
    /// Private-link gateway.
    Pvl,
}

impl GwRole {
    /// All eight roles (one cluster each per AZ, Fig. 15).
    pub const ALL: [GwRole; 8] = [
        GwRole::Xgw,
        GwRole::Igw,
        GwRole::Vgw,
        GwRole::Cgw,
        GwRole::Slb,
        GwRole::Nat,
        GwRole::Tr,
        GwRole::Pvl,
    ];

    /// The dominant data-plane service this role runs.
    pub fn service(self) -> ServiceKind {
        match self {
            GwRole::Xgw | GwRole::Tr => ServiceKind::VpcVpc,
            GwRole::Igw | GwRole::Slb | GwRole::Nat => ServiceKind::VpcInternet,
            GwRole::Vgw => ServiceKind::VpcIdc,
            GwRole::Cgw | GwRole::Pvl => ServiceKind::VpcCloudService,
        }
    }
}

/// A pod's resource request.
#[derive(Debug, Clone)]
pub struct GwPodSpec {
    /// Role (determines the service pipeline).
    pub role: GwRole,
    /// Data (packet-processing) cores.
    pub data_cores: usize,
    /// Control-plane cores.
    pub ctrl_cores: usize,
}

impl GwPodSpec {
    /// The evaluation's standard pod: 46 cores = 44 data + 2 ctrl (§6).
    pub fn evaluation_standard(role: GwRole) -> Self {
        Self {
            role,
            data_cores: 44,
            ctrl_cores: 2,
        }
    }

    /// Total cores requested.
    pub fn total_cores(&self) -> usize {
        self.data_cores + self.ctrl_cores
    }

    /// Reorder queues this pod is entitled to: proportional to data cores,
    /// clamped to 1–8 (§4.1 + §5: "a 40-core GW pod is assigned twice as
    /// many reorder queues as a 20-core GW pod").
    pub fn reorder_queues(&self) -> usize {
        (self.data_cores / 6).clamp(1, 8)
    }

    /// Shorthand for the role's service kind.
    pub fn service(&self) -> ServiceKind {
        self.role.service()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pod_shape() {
        let p = GwPodSpec::evaluation_standard(GwRole::Igw);
        assert_eq!(p.total_cores(), 46);
        assert_eq!(p.data_cores, 44);
        assert_eq!(p.service(), ServiceKind::VpcInternet);
    }

    #[test]
    fn reorder_queue_proportionality() {
        // The paper's example: 40-core pod gets 2× the queues of a 20-core.
        let big = GwPodSpec {
            role: GwRole::Xgw,
            data_cores: 40,
            ctrl_cores: 2,
        };
        let small = GwPodSpec {
            role: GwRole::Xgw,
            data_cores: 20,
            ctrl_cores: 2,
        };
        assert_eq!(big.reorder_queues(), 2 * small.reorder_queues());
        assert!(big.reorder_queues() <= 8);
        // A tiny pod still gets one queue.
        let tiny = GwPodSpec {
            role: GwRole::Xgw,
            data_cores: 2,
            ctrl_cores: 1,
        };
        assert_eq!(tiny.reorder_queues(), 1);
    }

    #[test]
    fn all_roles_have_services() {
        for role in GwRole::ALL {
            let _ = role.service(); // total function, no panics
        }
        assert_eq!(GwRole::ALL.len(), 8);
    }
}
