//! Advertise-before-withdraw traffic migration (§7).
//!
//! "Before the original GW pod withdraws the BGP route, the new GW pod has
//! to advertise the BGP route first and validate packets are processed
//! normally for a while (e.g., 30 seconds)" — the make-before-break rule
//! that keeps a VIP continuously served during pod replacement. The state
//! machine here enforces the ordering; a test proves the VIP is served by
//! at least one pod at every instant of the timeline.

use albatross_bgp::msg::NlriPrefix;
use albatross_bgp::proxy::BgpProxy;
use albatross_sim::SimTime;

/// Validation period before the old pod may withdraw.
pub const VALIDATION_PERIOD: SimTime = SimTime::from_secs(30);

/// Migration phases, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// New pod scheduled, not yet advertising.
    Preparing,
    /// New pod advertising; both pods serve; validation running.
    Validating,
    /// Old pod withdrawn; migration complete.
    Complete,
}

/// One VIP migration from `old_pod` to `new_pod`.
#[derive(Debug)]
pub struct Migration {
    vip: NlriPrefix,
    old_pod: u32,
    new_pod: u32,
    phase: MigrationPhase,
    validation_started: Option<SimTime>,
}

/// Errors from out-of-order migration steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// Tried to withdraw before the new pod advertised.
    WithdrawBeforeAdvertise,
    /// Tried to withdraw before validation completed.
    ValidationIncomplete {
        /// How much validation time remains.
        remaining: SimTime,
    },
    /// Step called in the wrong phase.
    WrongPhase,
}

impl Migration {
    /// Starts a migration plan.
    pub fn new(vip: NlriPrefix, old_pod: u32, new_pod: u32) -> Self {
        Self {
            vip,
            old_pod,
            new_pod,
            phase: MigrationPhase::Preparing,
            validation_started: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> MigrationPhase {
        self.phase
    }

    /// Step 1: the new pod advertises the VIP (through the proxy) and
    /// validation begins.
    pub fn advertise_new(
        &mut self,
        proxy: &mut BgpProxy,
        next_hop: std::net::Ipv4Addr,
        now: SimTime,
    ) -> Result<(), MigrationError> {
        if self.phase != MigrationPhase::Preparing {
            return Err(MigrationError::WrongPhase);
        }
        proxy.pod_advertise(self.new_pod, self.vip, next_hop);
        self.validation_started = Some(now);
        self.phase = MigrationPhase::Validating;
        Ok(())
    }

    /// Step 2: after the validation period, the old pod withdraws.
    pub fn withdraw_old(
        &mut self,
        proxy: &mut BgpProxy,
        now: SimTime,
    ) -> Result<(), MigrationError> {
        match self.phase {
            MigrationPhase::Preparing => Err(MigrationError::WithdrawBeforeAdvertise),
            MigrationPhase::Complete => Err(MigrationError::WrongPhase),
            MigrationPhase::Validating => {
                let started = self.validation_started.expect("set when validating");
                let elapsed = now.saturating_since(started);
                if elapsed < VALIDATION_PERIOD.as_nanos() {
                    return Err(MigrationError::ValidationIncomplete {
                        remaining: SimTime::from_nanos(VALIDATION_PERIOD.as_nanos() - elapsed),
                    });
                }
                proxy.pod_withdraw(self.old_pod, self.vip);
                self.phase = MigrationPhase::Complete;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vip() -> NlriPrefix {
        NlriPrefix::new(Ipv4Addr::new(203, 0, 113, 10), 32)
    }

    fn setup() -> (BgpProxy, Migration) {
        let mut proxy = BgpProxy::new();
        // Old pod (1) currently serves the VIP.
        proxy.pod_advertise(1, vip(), Ipv4Addr::new(10, 0, 0, 1));
        proxy.take_upstream_updates();
        (proxy, Migration::new(vip(), 1, 2))
    }

    #[test]
    fn happy_path_never_leaves_vip_unserved() {
        let (mut proxy, mut m) = setup();
        assert_eq!(m.phase(), MigrationPhase::Preparing);
        // t=0: new pod advertises.
        m.advertise_new(&mut proxy, Ipv4Addr::new(10, 0, 0, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(m.phase(), MigrationPhase::Validating);
        // During validation both pods serve — proxy still has the route.
        assert!(proxy.rib().best(vip()).is_some());
        // t=30s: withdraw allowed; the VIP stays served by the new pod.
        m.withdraw_old(&mut proxy, SimTime::from_secs(30)).unwrap();
        assert_eq!(m.phase(), MigrationPhase::Complete);
        let best = proxy.rib().best(vip()).expect("VIP must remain served");
        assert_eq!(best.peer, 2);
        // No upstream withdrawal was ever sent — the switch never saw a gap.
        let ups = proxy.take_upstream_updates();
        assert!(ups.iter().all(|u| !matches!(
            u,
            albatross_bgp::msg::BgpMessage::Update { withdrawn, .. } if !withdrawn.is_empty()
        )));
    }

    #[test]
    fn withdraw_before_advertise_rejected() {
        let (mut proxy, mut m) = setup();
        assert_eq!(
            m.withdraw_old(&mut proxy, SimTime::from_secs(100)),
            Err(MigrationError::WithdrawBeforeAdvertise)
        );
    }

    #[test]
    fn early_withdraw_rejected_with_remaining_time() {
        let (mut proxy, mut m) = setup();
        m.advertise_new(&mut proxy, Ipv4Addr::new(10, 0, 0, 2), SimTime::ZERO)
            .unwrap();
        match m.withdraw_old(&mut proxy, SimTime::from_secs(10)) {
            Err(MigrationError::ValidationIncomplete { remaining }) => {
                assert_eq!(remaining, SimTime::from_secs(20));
            }
            other => panic!("expected incomplete validation, got {other:?}"),
        }
    }

    #[test]
    fn double_advertise_rejected() {
        let (mut proxy, mut m) = setup();
        m.advertise_new(&mut proxy, Ipv4Addr::new(10, 0, 0, 2), SimTime::ZERO)
            .unwrap();
        assert_eq!(
            m.advertise_new(&mut proxy, Ipv4Addr::new(10, 0, 0, 2), SimTime::ZERO),
            Err(MigrationError::WrongPhase)
        );
    }

    #[test]
    fn complete_migration_is_terminal() {
        let (mut proxy, mut m) = setup();
        m.advertise_new(&mut proxy, Ipv4Addr::new(10, 0, 0, 2), SimTime::ZERO)
            .unwrap();
        m.withdraw_old(&mut proxy, SimTime::from_secs(31)).unwrap();
        assert_eq!(
            m.withdraw_old(&mut proxy, SimTime::from_secs(32)),
            Err(MigrationError::WrongPhase)
        );
    }
}
