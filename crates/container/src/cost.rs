//! Gateway construction cost and power model (Fig. 15, Tab. 6).
//!
//! §6: a new availability zone needs eight gateway-cluster types with four
//! gateways each — 32 physical boxes in the 1st/2nd-gen world. Albatross
//! packs those 32 gateways as 4 GW pods per server onto 8 servers. A server
//! costs 2× a previous-gen box, so the AZ cost halves; per-box power is
//! 500 W (1st gen), 300 W (2nd gen), 900 W (3rd gen), and the paper's AZ
//! mix (three 1st-gen clusters, five 2nd-gen clusters) draws 12,000 W vs
//! 7,200 W for Albatross — a 40% reduction.

/// The three gateway generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayGeneration {
    /// x86 clusters.
    Gen1X86,
    /// Tofino (Sailfish).
    Gen2Tofino,
    /// Albatross (x86 + FPGA, containerized).
    Gen3Albatross,
}

impl GatewayGeneration {
    /// Power draw of one physical unit in watts (§6).
    pub fn unit_power_w(self) -> u32 {
        match self {
            GatewayGeneration::Gen1X86 => 500,
            GatewayGeneration::Gen2Tofino => 300,
            GatewayGeneration::Gen3Albatross => 900,
        }
    }

    /// Relative per-device price (Tab. 6: Sailfish 1×, Albatross 2×).
    pub fn unit_price(self) -> f64 {
        match self {
            GatewayGeneration::Gen1X86 => 1.0,
            GatewayGeneration::Gen2Tofino => 1.0,
            GatewayGeneration::Gen3Albatross => 2.0,
        }
    }
}

/// The AZ buildout model.
#[derive(Debug, Clone)]
pub struct AzCostModel {
    /// Gateway cluster types per AZ (XGW, IGW, …: 8).
    pub cluster_types: usize,
    /// Gateways per cluster (4).
    pub gateways_per_cluster: usize,
    /// GW pods per Albatross server (4).
    pub pods_per_server: usize,
}

impl AzCostModel {
    /// The paper's AZ: 8 cluster types × 4 gateways, 4 pods per server.
    pub fn paper() -> Self {
        Self {
            cluster_types: 8,
            gateways_per_cluster: 4,
            pods_per_server: 4,
        }
    }

    /// Gateways an AZ needs.
    pub fn gateways_needed(&self) -> usize {
        self.cluster_types * self.gateways_per_cluster
    }

    /// Physical boxes in the legacy (one gateway = one box) form.
    pub fn legacy_boxes(&self) -> usize {
        self.gateways_needed()
    }

    /// Albatross servers needed (pods packed per server).
    pub fn albatross_servers(&self) -> usize {
        self.gateways_needed().div_ceil(self.pods_per_server)
    }

    /// Server-count reduction fraction (paper: 75%).
    pub fn server_reduction(&self) -> f64 {
        1.0 - self.albatross_servers() as f64 / self.legacy_boxes() as f64
    }

    /// Relative AZ cost of the legacy buildout (normalized to unit price 1).
    pub fn legacy_cost(&self) -> f64 {
        self.legacy_boxes() as f64 * GatewayGeneration::Gen1X86.unit_price()
    }

    /// Relative AZ cost of the Albatross buildout.
    pub fn albatross_cost(&self) -> f64 {
        self.albatross_servers() as f64 * GatewayGeneration::Gen3Albatross.unit_price()
    }

    /// Cost-reduction fraction (paper: 50%).
    pub fn cost_reduction(&self) -> f64 {
        1.0 - self.albatross_cost() / self.legacy_cost()
    }

    /// Legacy AZ power: the paper's mix of three 1st-gen and five 2nd-gen
    /// clusters (W).
    pub fn legacy_power_w(&self) -> u32 {
        let gen1_clusters = 3;
        let gen2_clusters = self.cluster_types - gen1_clusters;
        (gen1_clusters * self.gateways_per_cluster) as u32
            * GatewayGeneration::Gen1X86.unit_power_w()
            + (gen2_clusters * self.gateways_per_cluster) as u32
                * GatewayGeneration::Gen2Tofino.unit_power_w()
    }

    /// Albatross AZ power (W).
    pub fn albatross_power_w(&self) -> u32 {
        self.albatross_servers() as u32 * GatewayGeneration::Gen3Albatross.unit_power_w()
    }

    /// Power-reduction fraction (paper: 40%).
    pub fn power_reduction(&self) -> f64 {
        1.0 - f64::from(self.albatross_power_w()) / f64::from(self.legacy_power_w())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        let m = AzCostModel::paper();
        assert_eq!(m.gateways_needed(), 32);
        assert_eq!(m.legacy_boxes(), 32);
        assert_eq!(m.albatross_servers(), 8);
        assert!((m.server_reduction() - 0.75).abs() < 1e-9);
        assert!((m.cost_reduction() - 0.50).abs() < 1e-9);
        assert_eq!(m.legacy_power_w(), 12_000);
        assert_eq!(m.albatross_power_w(), 7_200);
        assert!((m.power_reduction() - 0.40).abs() < 1e-9);
    }

    #[test]
    fn fractional_servers_round_up() {
        let m = AzCostModel {
            cluster_types: 3,
            gateways_per_cluster: 3,
            pods_per_server: 4,
        };
        assert_eq!(m.gateways_needed(), 9);
        assert_eq!(m.albatross_servers(), 3);
    }

    #[test]
    fn density_one_removes_savings() {
        let m = AzCostModel {
            pods_per_server: 1,
            ..AzCostModel::paper()
        };
        assert_eq!(m.albatross_servers(), 32);
        // 2× device price with no consolidation → costs double.
        assert!(m.cost_reduction() < 0.0);
    }

    #[test]
    fn generation_constants() {
        assert_eq!(GatewayGeneration::Gen3Albatross.unit_power_w(), 900);
        assert_eq!(GatewayGeneration::Gen3Albatross.unit_price(), 2.0);
    }
}
