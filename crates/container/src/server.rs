//! The Albatross server model.
//!
//! §3.2 / Fig. 2: dual-NUMA, 48 cores + 512 GB DDR5 per node, four
//! 2×100 Gbps FPGA SmartNICs (two per NUMA, 800 Gbps total I/O), one
//! 2×25 Gbps management NIC. Pods must fit inside one NUMA node (§7), get
//! 4 VFs across that node's four ports, one queue pair per data core, and
//! reorder queues in proportion to cores.

use albatross_fpga::sriov::{SriovAllocator, VfConfig};
use albatross_mem::NumaTopology;

use crate::pod::GwPodSpec;

/// Why a pod could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// Neither NUMA node has enough free cores.
    NoCores {
        /// Cores requested.
        requested: usize,
    },
    /// The node's NICs are out of VF slots.
    NoVfs,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoCores { requested } => {
                write!(f, "no NUMA node has {requested} free cores")
            }
            PlacementError::NoVfs => write!(f, "NIC VF slots exhausted"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A placed pod's resource grant.
#[derive(Debug)]
pub struct PodPlacement {
    /// Pod id on this server.
    pub pod_id: u32,
    /// NUMA node hosting all the pod's cores and memory.
    pub numa_node: usize,
    /// Global core ids granted.
    pub cores: Vec<usize>,
    /// The pod's 4 VFs.
    pub vfs: Vec<VfConfig>,
    /// Reorder queues granted.
    pub reorder_queues: usize,
}

/// One physical Albatross server.
pub struct AlbatrossServer {
    topo: NumaTopology,
    /// Free core ids per NUMA node.
    free_cores: Vec<Vec<usize>>,
    /// SR-IOV allocator per NUMA node (its two NICs / four ports).
    sriov: Vec<SriovAllocator>,
    next_pod_id: u32,
    placements: Vec<PodPlacement>,
}

impl AlbatrossServer {
    /// A production server: 2 × 48 cores, 8 VFs per PF.
    pub fn production() -> Self {
        Self::new(NumaTopology::albatross_server(), 8)
    }

    /// Creates a server over `topo` with `vfs_per_pf` VF slots per port.
    pub fn new(topo: NumaTopology, vfs_per_pf: u8) -> Self {
        let free_cores = (0..topo.nodes())
            .map(|n| {
                let base = n * topo.cores_per_node();
                (base..base + topo.cores_per_node()).rev().collect()
            })
            .collect();
        let sriov = (0..topo.nodes())
            .map(|_| SriovAllocator::new(vfs_per_pf))
            .collect();
        Self {
            topo,
            free_cores,
            sriov,
            next_pod_id: 0,
            placements: Vec::new(),
        }
    }

    /// Places a pod, strictly inside one NUMA node. Fills the emptier node
    /// first for balance.
    pub fn place(&mut self, spec: &GwPodSpec) -> Result<&PodPlacement, PlacementError> {
        let need = spec.total_cores();
        // Choose the node with the most free cores that still fits.
        let node = (0..self.topo.nodes())
            .filter(|&n| self.free_cores[n].len() >= need)
            .max_by_key(|&n| self.free_cores[n].len())
            .ok_or(PlacementError::NoCores { requested: need })?;
        if self.sriov[node].remaining_pod_capacity() == 0 {
            return Err(PlacementError::NoVfs);
        }
        let pod_id = self.next_pod_id;
        let cores: Vec<usize> = (0..need)
            .map(|_| self.free_cores[node].pop().expect("checked length"))
            .collect();
        let vfs = self.sriov[node]
            .allocate_pod(pod_id, spec.data_cores as u16)
            .map_err(|_| PlacementError::NoVfs)?;
        self.next_pod_id += 1;
        self.placements.push(PodPlacement {
            pod_id,
            numa_node: node,
            cores,
            vfs,
            reorder_queues: spec.reorder_queues(),
        });
        Ok(self.placements.last().expect("just pushed"))
    }

    /// Placed pods.
    pub fn placements(&self) -> &[PodPlacement] {
        &self.placements
    }

    /// Free cores on `node`.
    pub fn free_cores_on(&self, node: usize) -> usize {
        self.free_cores[node].len()
    }

    /// Total free cores.
    pub fn free_cores(&self) -> usize {
        self.free_cores.iter().map(Vec::len).sum()
    }

    /// The NUMA topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pod::GwRole;

    fn spec(cores: usize) -> GwPodSpec {
        GwPodSpec {
            role: GwRole::Xgw,
            data_cores: cores - 2,
            ctrl_cores: 2,
        }
    }

    #[test]
    fn evaluation_setup_two_46_core_pods() {
        // §6: "we allocate two 46-core GW pods. Each pod is within a NUMA
        // node" — one per node; a third cannot fit.
        let mut s = AlbatrossServer::production();
        let a = s
            .place(&GwPodSpec::evaluation_standard(GwRole::Igw))
            .unwrap()
            .numa_node;
        let b = s
            .place(&GwPodSpec::evaluation_standard(GwRole::Igw))
            .unwrap()
            .numa_node;
        assert_ne!(a, b);
        assert!(s
            .place(&GwPodSpec::evaluation_standard(GwRole::Igw))
            .is_err());
    }

    #[test]
    fn fig15_density_four_pods_per_server() {
        // Fig. 15: 4 GW pods per Albatross server (two 23-core pods per
        // NUMA node).
        let mut s = AlbatrossServer::production();
        for _ in 0..4 {
            s.place(&spec(23)).unwrap();
        }
        assert_eq!(s.placements().len(), 4);
        let on_node0 = s.placements().iter().filter(|p| p.numa_node == 0).count();
        assert_eq!(on_node0, 2, "two pods per NUMA node");
    }

    #[test]
    fn pods_never_span_numa_nodes() {
        let mut s = AlbatrossServer::production();
        let p = s.place(&spec(46)).unwrap();
        let node = p.numa_node;
        let cores = p.cores.clone();
        for &c in &cores {
            assert_eq!(s.topology().node_of_core(c), node);
        }
    }

    #[test]
    fn placement_balances_nodes() {
        let mut s = AlbatrossServer::production();
        let a = s.place(&spec(46)).unwrap().numa_node;
        let b = s.placements().last().unwrap().numa_node;
        assert_eq!(a, b);
        let second = s.place(&spec(46)).unwrap().numa_node;
        assert_ne!(a, second, "second pod must go to the other node");
    }

    #[test]
    fn oversized_pod_rejected() {
        let mut s = AlbatrossServer::production();
        assert_eq!(
            s.place(&spec(49)).unwrap_err(),
            PlacementError::NoCores { requested: 49 }
        );
    }

    #[test]
    fn capacity_exhausts() {
        let mut s = AlbatrossServer::production();
        // 4 × 24-core pods per node = 96 cores total.
        for _ in 0..4 {
            s.place(&spec(24)).unwrap();
        }
        assert_eq!(s.free_cores(), 0);
        assert!(s.place(&spec(24)).is_err());
    }

    #[test]
    fn reorder_queue_grant_follows_spec() {
        let mut s = AlbatrossServer::production();
        let p = s
            .place(&GwPodSpec::evaluation_standard(GwRole::Igw))
            .unwrap();
        assert_eq!(p.reorder_queues, 7); // 44/6 = 7
        assert_eq!(p.vfs.len(), 4);
        assert_eq!(p.vfs[0].queue_pairs, 44);
    }
}
