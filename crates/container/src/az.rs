//! Coupled AZ-scale resilience simulation.
//!
//! Unlike the per-pod harnesses (one [`PodSimulation`](crate::PodSimulation) per sweep point,
//! nothing shared), this module wires a whole availability zone together
//! the way §5/§7 describe it: every server runs a real
//! [`BgpProxy`] whose upstream UPDATEs are
//! actually applied to one shared
//! [`SwitchControlPlane`]
//! RIB; every pod's liveness is a real
//! [`BfdSession`] driven by 50 ms control
//! packets (§4.3); placement goes through the
//! [`Orchestrator`] with its 10-second bring-up; and
//! VIP moves run the [`Migration`]
//! advertise-before-withdraw state machine (§7). Failure drills are a
//! deterministic [`EventScript`] interleaved with that control plane.
//!
//! # Two-phase design (determinism)
//!
//! The determinism contract (DESIGN.md §4d) says thread count never
//! changes a byte. A naively coupled simulation would break it — pods
//! would exchange state mid-flight. Instead the run splits in two:
//!
//! 1. **Control-plane phase** (single-threaded, event-driven): BGP, BFD,
//!    orchestration and the drill script execute on one engine. Every
//!    moment the switch RIB changes, the new VIP→pod steering is
//!    snapshotted at `event time + per-route processing delay` (20 µs per
//!    route touched). The output is a *steering timeline*.
//! 2. **Data-plane phase**: the timeline is compiled into per-pod
//!    [`SteerSegment`] trains — the uplink switch spreads the service's
//!    aggregate rate equally over routed VIPs — and the pods run as
//!    lockstep shards of **one** scenario through the
//!    [`ShardedPodSimulation`] (conservative-lookahead epochs, DESIGN.md
//!    §4g). Reports merge in pod order via [`SimReport::merge_ordered`],
//!    so any `shards × threads` geometry reproduces the serial bytes.
//!
//! Packets steered at a VIP whose pod is dead or link-silenced — the
//! window between failure and the withdraw becoming effective upstream —
//! are **blackholed**: counted analytically, never delivered. A failed VF
//! eats a deterministic `1/vfs` share of its pod's packets at the edge
//! until failover completes. Everything else must come out the far end,
//! giving the conservation law the scenario suite pins:
//! `delivered == offered − blackholed − vf_lost`.
//!
//! Each drill window tags its traffic with a distinct VNI, so delivery
//! ratio and p99 latency are attributable per drill from the merged
//! report's per-tenant instruments ([`SimConfig::track_tenant_latency`]).

use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

use albatross_bgp::bfd::{BfdSession, BfdState};
use albatross_bgp::msg::NlriPrefix;
use albatross_bgp::proxy::BgpProxy;
use albatross_bgp::switchcp::SwitchControlPlane;
use albatross_sim::{Engine, EventScript, SimTime};
use albatross_telemetry::TimeSeries;
use albatross_workload::{FlowSet, SteerSegment, SteeredSource};

use crate::fleet::FleetConfig;
use crate::migration::{Migration, VALIDATION_PERIOD};
use crate::orchestrator::Orchestrator;
use crate::pod::{GwPodSpec, GwRole};
use crate::simrun::{ShardedPodSimulation, SimConfig, SimReport};

/// One scripted failure drill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrillSpec {
    /// When the drill fires.
    pub at: SimTime,
    /// Exclusive end of the drill's attribution window: traffic offered in
    /// `[at, window_end)` carries the drill's VNI. Windows of different
    /// drills must not overlap.
    pub window_end: SimTime,
    /// What happens.
    pub kind: DrillKind,
}

/// The failure injected by a drill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillKind {
    /// The pod at (`server`, `slot`) crashes without withdrawing: BFD must
    /// detect it, the proxy flushes its VIP, the switch withdraws, and the
    /// orchestrator respawns a replacement (ready 10 s later) that
    /// re-advertises the same VIP.
    PodCrash {
        /// Hosting server.
        server: usize,
        /// Initial pod slot on that server.
        slot: usize,
    },
    /// Advertise-before-withdraw VIP migration (§7): a replacement pod is
    /// scheduled on the same server; once ready it advertises the VIP,
    /// validates for [`VALIDATION_PERIOD`], then the old pod withdraws.
    /// The switch never sees a route gap.
    VipMigration {
        /// Hosting server.
        server: usize,
        /// Initial pod slot whose VIP migrates.
        slot: usize,
    },
    /// Every live pod on `server` loses its BFD stream for `silence`
    /// (> detection time ⇒ all sessions go Down, the proxy flushes every
    /// pod, and upstream holds **zero** routes from that server until the
    /// storm ends and pods re-advertise).
    BfdFlapStorm {
        /// Target server.
        server: usize,
        /// How long BFD packets stop arriving.
        silence: SimTime,
    },
    /// One VF of the pod's NIC allotment fails: a `1/vfs` share of the
    /// pod's packets is lost at the edge until failover completes.
    VfFailure {
        /// Hosting server.
        server: usize,
        /// Initial pod slot on that server.
        slot: usize,
        /// Time until the failed VF's queues are rebalanced.
        failover: SimTime,
    },
    /// Elastic scale-out: a new pod (new VIP) is scheduled on `server`;
    /// after the 10 s bring-up it advertises and absorbs an equal share.
    ScaleOut {
        /// Target server.
        server: usize,
    },
}

impl DrillKind {
    /// Stable label used in reports and canonical RESULT lines.
    pub fn name(&self) -> &'static str {
        match self {
            DrillKind::PodCrash { .. } => "pod-crash",
            DrillKind::VipMigration { .. } => "vip-migration",
            DrillKind::BfdFlapStorm { .. } => "bfd-flap-storm",
            DrillKind::VfFailure { .. } => "vf-failure",
            DrillKind::ScaleOut { .. } => "scale-out",
        }
    }
}

/// Configuration of a coupled AZ run.
#[derive(Debug, Clone)]
pub struct AzConfig {
    /// Physical servers in the AZ slice.
    pub servers: usize,
    /// GW pods initially running per server (each with its own /32 VIP).
    pub pods_per_server: usize,
    /// Data cores per pod shard.
    pub data_cores: usize,
    /// Role every pod runs (fixes the service pipeline).
    pub role: GwRole,
    /// Aggregate offered rate across the whole AZ, packets per second.
    /// The switch divides it equally among routed VIPs.
    pub pps: u64,
    /// Frame length.
    pub len_bytes: u32,
    /// Concurrent flows per pod source.
    pub flows_per_pod: usize,
    /// Working-set scale for the pod shards.
    pub table_scale: f64,
    /// Total virtual duration of each pod shard.
    pub duration: SimTime,
    /// Drain margin: steering stops this long before `duration` so every
    /// in-flight packet egresses and the conservation law is exact.
    pub drain: SimTime,
    /// Base seed (per-shard seeds derive from it).
    pub seed: u64,
    /// The drill script.
    pub drills: Vec<DrillSpec>,
}

impl AzConfig {
    /// A small AZ slice with no drills: `servers × pods_per_server` pods,
    /// 76 s horizon, debug-friendly rates.
    pub fn new(servers: usize, pods_per_server: usize) -> Self {
        Self {
            servers,
            pods_per_server,
            data_cores: 4,
            role: GwRole::Igw,
            pps: 1_600,
            len_bytes: 256,
            flows_per_pod: 32,
            table_scale: 0.01,
            duration: SimTime::from_secs(76),
            drain: SimTime::from_millis(10),
            seed: 7,
            drills: Vec::new(),
        }
    }

    /// The canonical five-drill resilience suite (needs ≥ 2 servers and
    /// ≥ 2 pods per server): pod crash + respawn, VIP migration mid-flow,
    /// a BFD flap storm taking a whole server dark, a VF failure, and an
    /// elastic scale-out. Windows are disjoint by construction.
    pub fn with_drill_suite(mut self) -> Self {
        assert!(
            self.servers >= 2 && self.pods_per_server >= 2,
            "drill suite needs at least 2 servers x 2 pods"
        );
        let last = self.servers - 1;
        let s = SimTime::from_secs;
        self.drills = vec![
            DrillSpec {
                at: s(2),
                window_end: s(14),
                kind: DrillKind::PodCrash { server: 0, slot: 0 },
            },
            DrillSpec {
                at: s(15),
                window_end: s(56),
                kind: DrillKind::VipMigration {
                    server: last,
                    slot: 0,
                },
            },
            DrillSpec {
                at: s(56),
                window_end: s(60),
                kind: DrillKind::BfdFlapStorm {
                    server: 0,
                    silence: SimTime::from_millis(400),
                },
            },
            DrillSpec {
                at: s(60),
                window_end: s(62),
                kind: DrillKind::VfFailure {
                    server: last,
                    slot: 1,
                    failover: SimTime::from_secs(1),
                },
            },
            DrillSpec {
                at: s(62),
                window_end: s(75),
                kind: DrillKind::ScaleOut { server: last },
            },
        ];
        self
    }

    /// When steering (and offered traffic) stops.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_nanos(self.duration.saturating_since(self.drain))
    }

    fn validate(&self) {
        assert!(self.servers >= 1 && self.pods_per_server >= 1);
        assert!(self.pps > 0, "aggregate rate must be positive");
        assert!(self.drain < self.duration, "drain margin eats the run");
        let horizon = self.horizon();
        let mut prev_end = SimTime::ZERO;
        for d in &self.drills {
            assert!(d.at < d.window_end, "drill window must be non-empty");
            assert!(
                d.window_end <= horizon,
                "drill window must end before the steering horizon"
            );
            assert!(
                d.at >= prev_end,
                "drill windows must be disjoint and ordered"
            );
            prev_end = d.window_end;
            let (srv, slot) = match d.kind {
                DrillKind::PodCrash { server, slot }
                | DrillKind::VipMigration { server, slot }
                | DrillKind::VfFailure { server, slot, .. } => (server, Some(slot)),
                DrillKind::BfdFlapStorm { server, .. } | DrillKind::ScaleOut { server } => {
                    (server, None)
                }
            };
            assert!(srv < self.servers, "drill targets a missing server");
            if let Some(slot) = slot {
                assert!(slot < self.pods_per_server, "drill targets a missing slot");
            }
        }
    }

    fn spec(&self) -> GwPodSpec {
        GwPodSpec {
            role: self.role,
            data_cores: self.data_cores,
            ctrl_cores: 1,
        }
    }
}

/// Per-window outcome (the baseline window and one per drill).
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// Drill label (`baseline` for the ambient window).
    pub name: String,
    /// VNI carried by the window's traffic.
    pub vni: u32,
    /// Window start.
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Packets the clients offered during the window (steering-level).
    pub offered: u64,
    /// Packets steered at dead/silenced pods (stale upstream routes).
    pub blackholed: u64,
    /// Packets eaten by a failed VF before the NIC.
    pub vf_lost: u64,
    /// `offered − blackholed − vf_lost`: what the data plane must deliver
    /// when it introduces no loss of its own.
    pub expected_delivered: u64,
    /// Packets actually transmitted by the pod shards (per-VNI meters).
    pub delivered: u64,
    /// `delivered / offered`.
    pub delivery_ratio: f64,
    /// p99 end-to-end latency of the window's delivered packets, ns.
    pub p99_ns: u64,
    /// Time from drill trigger until its steering change became effective
    /// upstream (BFD detection + proxy flush + switch per-route work for
    /// failures; bring-up + advertise for migration/scale-out; failover
    /// time for a VF loss). Zero for the baseline window.
    pub convergence: SimTime,
    /// For the flap storm: routes the switch still holds from the target
    /// server's proxy once the withdraws converged (pinned to zero).
    pub routes_from_target: Option<usize>,
}

/// Everything an AZ run produced.
#[derive(Debug)]
pub struct AzReport {
    /// All pod shards merged in pod order ([`SimReport::merge_ordered`]).
    pub merged: SimReport,
    /// The ambient (non-drill) window.
    pub baseline: DrillReport,
    /// One report per scripted drill, in script order.
    pub drills: Vec<DrillReport>,
    /// Routed VIP count after every control-plane change.
    pub route_series: TimeSeries,
    /// Pod shards that carried traffic.
    pub shards: usize,
}

impl AzReport {
    /// Total packets offered across every window.
    pub fn offered(&self) -> u64 {
        self.baseline.offered + self.drills.iter().map(|d| d.offered).sum::<u64>()
    }

    /// Total packets blackholed by stale routes.
    pub fn blackholed(&self) -> u64 {
        self.baseline.blackholed + self.drills.iter().map(|d| d.blackholed).sum::<u64>()
    }

    /// Total packets lost to failed VFs.
    pub fn vf_lost(&self) -> u64 {
        self.baseline.vf_lost + self.drills.iter().map(|d| d.vf_lost).sum::<u64>()
    }

    /// Canonical machine-readable rendering: one `RESULT az` summary line
    /// plus one `RESULT window` line per window, floats as bit patterns.
    /// Byte-identical across reruns and thread counts.
    pub fn render(&self, cfg: &AzConfig) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(
            s,
            "RESULT az servers={} pods_per_server={} shards={} pps={} horizon_ns={} \
             offered={} delivered={} blackholed={} vf_lost={} p99_ns={}",
            cfg.servers,
            cfg.pods_per_server,
            self.shards,
            cfg.pps,
            cfg.horizon().as_nanos(),
            self.offered(),
            self.merged.transmitted,
            self.blackholed(),
            self.vf_lost(),
            self.merged.latency.percentile(0.99),
        )
        .expect("string write");
        for w in std::iter::once(&self.baseline).chain(&self.drills) {
            writeln!(
                s,
                "RESULT window name={} vni={} start_ns={} end_ns={} offered={} blackholed={} \
                 vf_lost={} expected={} delivered={} ratio_bits={:016x} p99_ns={} conv_ns={} \
                 routes_target={}",
                w.name,
                w.vni,
                w.start.as_nanos(),
                w.end.as_nanos(),
                w.offered,
                w.blackholed,
                w.vf_lost,
                w.expected_delivered,
                w.delivered,
                w.delivery_ratio.to_bits(),
                w.p99_ns,
                w.convergence.as_nanos(),
                w.routes_from_target.map_or(-1, |r| r as i64),
            )
            .expect("string write");
        }
        s
    }
}

/// The coupled AZ simulation driver.
#[derive(Debug)]
pub struct AzSimulation {
    cfg: AzConfig,
}

/// Control-plane events.
#[derive(Debug)]
enum CpEv {
    /// A pod's 50 ms BFD cadence: transmit (when the link works) + check.
    BfdTick(usize),
    /// A scripted drill fires.
    Drill(usize),
    /// A flap storm's silence window ends.
    StormEnd { drill: usize },
    /// A scheduled pod finished its 10 s bring-up.
    PodReady { pod: usize, drill: usize },
    /// Migration validation elapsed; the old pod may withdraw.
    WithdrawOld { drill: usize },
}

/// One pod's control-plane identity.
#[derive(Debug)]
struct AzPod {
    id: u32,
    server: usize,
    vip: usize,
    nh: Ipv4Addr,
    alive: bool,
    silenced: bool,
    retired: bool,
    vfs: u64,
}

/// Mutable per-drill bookkeeping.
#[derive(Debug, Default)]
struct DrillRt {
    converged_at: Option<SimTime>,
    routes_from_target: Option<usize>,
    migration: Option<Migration>,
    old_pod: Option<usize>,
}

/// Offered/lost accounting for one VNI window.
#[derive(Debug, Default, Clone, Copy)]
struct Ledger {
    offered: u64,
    blackholed: u64,
    vf_lost: u64,
}

/// The shared control plane (phase 1 state).
struct Cp<'a> {
    cfg: &'a AzConfig,
    switch: SwitchControlPlane,
    proxies: Vec<BgpProxy>,
    peers: Vec<u32>,
    orch: Orchestrator,
    pods: Vec<AzPod>,
    bfd: Vec<BfdSession>,
    vips: Vec<NlriPrefix>,
    nh_to_pod: HashMap<Ipv4Addr, usize>,
    /// (effective time, serving pod per VIP) after every RIB change.
    snapshots: Vec<(SimTime, Vec<Option<usize>>)>,
    /// Per pod: intervals where its data path is dark.
    outages: Vec<Vec<(SimTime, SimTime)>>,
    /// Per pod: (start, end, drop modulus) of VF-failure windows.
    vf_windows: Vec<Vec<(SimTime, SimTime, u64)>>,
    drill_rt: Vec<DrillRt>,
    /// Pods whose next BFD Down is attributable to a drill.
    drill_of_pod: HashMap<usize, usize>,
}

impl<'a> Cp<'a> {
    fn new(cfg: &'a AzConfig) -> Self {
        let mut cp = Self {
            cfg,
            switch: SwitchControlPlane::new(),
            proxies: Vec::new(),
            peers: Vec::new(),
            orch: Orchestrator::with_servers(cfg.servers),
            pods: Vec::new(),
            bfd: Vec::new(),
            vips: Vec::new(),
            nh_to_pod: HashMap::new(),
            snapshots: Vec::new(),
            outages: Vec::new(),
            vf_windows: Vec::new(),
            drill_rt: cfg.drills.iter().map(|_| DrillRt::default()).collect(),
            drill_of_pod: HashMap::new(),
        };
        for _ in 0..cfg.servers {
            cp.proxies.push(BgpProxy::new());
            let peer = cp.switch.add_peer(cfg.pods_per_server);
            cp.peers.push(peer as u32);
        }
        // The AZ starts pre-converged: initial pods were brought up before
        // t=0, their VIPs advertised and learned, BFD Up.
        for server in 0..cfg.servers {
            for _slot in 0..cfg.pods_per_server {
                let vip_idx = cp.new_vip();
                let (p, _ready) = cp.new_pod(server, vip_idx, SimTime::ZERO);
                cp.pods[p].alive = true;
                cp.bfd[p].on_packet(SimTime::ZERO);
                let pod = &cp.pods[p];
                cp.proxies[server].pod_advertise(pod.id, cp.vips[vip_idx], pod.nh);
            }
        }
        for server in 0..cfg.servers {
            for msg in cp.proxies[server].take_upstream_updates() {
                cp.switch.apply_update(cp.peers[server], &msg);
            }
        }
        cp.snapshot(SimTime::ZERO);
        cp
    }

    fn new_vip(&mut self) -> usize {
        let idx = self.vips.len();
        assert!(idx < 250, "VIP space exhausted");
        self.vips.push(NlriPrefix::new(
            Ipv4Addr::new(203, 0, 113, idx as u8 + 1),
            32,
        ));
        idx
    }

    /// Schedules a pod on `server` serving `vip_idx`. Returns its index
    /// and ready time; the caller decides when it starts advertising.
    fn new_pod(&mut self, server: usize, vip_idx: usize, now: SimTime) -> (usize, SimTime) {
        let sched = self
            .orch
            .schedule_on(server, &self.cfg.spec(), now)
            .expect("AZ drill placement must fit the server");
        let (id, ready) = (sched.id, sched.ready_at);
        let vfs = self.orch.servers()[server]
            .placements()
            .last()
            .expect("just placed")
            .vfs
            .len() as u64;
        let nh = Ipv4Addr::new(10, 0, (id >> 8) as u8, (id & 0xff) as u8);
        let idx = self.pods.len();
        self.pods.push(AzPod {
            id,
            server,
            vip: vip_idx,
            nh,
            alive: false,
            silenced: false,
            retired: false,
            vfs,
        });
        self.bfd.push(BfdSession::production());
        self.outages.push(Vec::new());
        self.vf_windows.push(Vec::new());
        self.nh_to_pod.insert(nh, idx);
        (idx, ready)
    }

    /// Initial pod index for (server, slot).
    fn slot_pod(&self, server: usize, slot: usize) -> usize {
        server * self.cfg.pods_per_server + slot
    }

    /// Drains a proxy's pending UPDATEs into the switch. Returns when the
    /// new routing became effective (event time + per-route processing).
    fn flush_proxy(&mut self, server: usize, now: SimTime) -> Option<SimTime> {
        let msgs = self.proxies[server].take_upstream_updates();
        if msgs.is_empty() {
            return None;
        }
        let mut delay = 0u64;
        for msg in &msgs {
            delay += self.switch.apply_update(self.peers[server], msg).as_nanos();
        }
        let eff = now + delay;
        self.snapshot(eff);
        Some(eff)
    }

    /// Records who serves each VIP according to the switch RIB.
    fn snapshot(&mut self, at: SimTime) {
        let serving: Vec<Option<usize>> = self
            .vips
            .iter()
            .map(|vip| {
                self.switch
                    .rib()
                    .best(*vip)
                    .map(|r| *self.nh_to_pod.get(&r.next_hop).expect("known next hop"))
            })
            .collect();
        self.snapshots.push((at, serving));
    }

    fn serving_at(&self, t: SimTime) -> &[Option<usize>] {
        self.snapshots
            .iter()
            .rev()
            .find(|(at, _)| *at <= t)
            .map(|(_, s)| s.as_slice())
            .expect("snapshot at t=0 always exists")
    }

    fn advertise(&mut self, p: usize, now: SimTime) -> Option<SimTime> {
        let (server, id, vip, nh) = {
            let pod = &self.pods[p];
            (pod.server, pod.id, self.vips[pod.vip], pod.nh)
        };
        self.proxies[server].pod_advertise(id, vip, nh);
        self.flush_proxy(server, now)
    }

    /// A BFD session transitioned to Down: the proxy flushes the pod, the
    /// switch withdraws, and drill bookkeeping runs.
    fn on_pod_down(&mut self, p: usize, now: SimTime, engine: &mut Engine<CpEv>) {
        let (server, id) = (self.pods[p].server, self.pods[p].id);
        self.proxies[server].pod_down(id);
        let eff = self.flush_proxy(server, now);
        if let Some(d) = self.drill_of_pod.remove(&p) {
            match self.cfg.drills[d].kind {
                DrillKind::PodCrash { server, .. } => {
                    self.drill_rt[d].converged_at = eff;
                    // The orchestrator reacts to the detection: respawn a
                    // replacement for the same VIP on the same server.
                    let vip_idx = self.pods[p].vip;
                    let (new_pod, ready) = self.new_pod(server, vip_idx, now);
                    engine.schedule(
                        ready,
                        CpEv::PodReady {
                            pod: new_pod,
                            drill: d,
                        },
                    );
                }
                DrillKind::BfdFlapStorm { server, .. } => {
                    let rt = &mut self.drill_rt[d];
                    rt.converged_at = match (rt.converged_at, eff) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    rt.routes_from_target = Some(self.switch.routes_from(self.peers[server]));
                }
                _ => {}
            }
        }
        if !self.pods[p].alive {
            // Crashed (not merely silenced) pods never come back; their
            // replacement is a fresh pod.
            self.pods[p].retired = true;
        }
    }

    fn handle_drill(&mut self, d: usize, now: SimTime, engine: &mut Engine<CpEv>) {
        match self.cfg.drills[d].kind {
            DrillKind::PodCrash { server, slot } => {
                let p = self.slot_pod(server, slot);
                assert!(!self.pods[p].retired, "crash target already gone");
                self.pods[p].alive = false;
                self.outages[p].push((now, self.cfg.duration));
                self.drill_of_pod.insert(p, d);
            }
            DrillKind::VipMigration { server, slot } => {
                let old = self.slot_pod(server, slot);
                let vip_idx = self.pods[old].vip;
                let (new_pod, ready) = self.new_pod(server, vip_idx, now);
                self.drill_rt[d].migration = Some(Migration::new(
                    self.vips[vip_idx],
                    self.pods[old].id,
                    self.pods[new_pod].id,
                ));
                self.drill_rt[d].old_pod = Some(old);
                engine.schedule(
                    ready,
                    CpEv::PodReady {
                        pod: new_pod,
                        drill: d,
                    },
                );
            }
            DrillKind::BfdFlapStorm { server, silence } => {
                for p in 0..self.pods.len() {
                    let pod = &mut self.pods[p];
                    if pod.server == server && pod.alive && !pod.retired {
                        pod.silenced = true;
                        self.outages[p].push((now, now + silence.as_nanos()));
                        self.drill_of_pod.insert(p, d);
                    }
                }
                engine.schedule(now + silence.as_nanos(), CpEv::StormEnd { drill: d });
            }
            DrillKind::VfFailure {
                server,
                slot,
                failover,
            } => {
                let p = self.slot_pod(server, slot);
                let drop_mod = self.pods[p].vfs;
                assert!(drop_mod >= 2, "pod needs at least two VFs to lose one");
                self.vf_windows[p].push((now, now + failover.as_nanos(), drop_mod));
                self.drill_rt[d].converged_at = Some(now + failover.as_nanos());
            }
            DrillKind::ScaleOut { server } => {
                let vip_idx = self.new_vip();
                let (new_pod, ready) = self.new_pod(server, vip_idx, now);
                engine.schedule(
                    ready,
                    CpEv::PodReady {
                        pod: new_pod,
                        drill: d,
                    },
                );
            }
        }
    }

    fn handle_pod_ready(&mut self, pod: usize, d: usize, now: SimTime, engine: &mut Engine<CpEv>) {
        self.pods[pod].alive = true;
        match self.cfg.drills[d].kind {
            DrillKind::VipMigration { server, .. } => {
                let mut m = self.drill_rt[d]
                    .migration
                    .take()
                    .expect("migration planned");
                m.advertise_new(&mut self.proxies[server], self.pods[pod].nh, now)
                    .expect("fresh migration advertises once");
                self.drill_rt[d].migration = Some(m);
                let eff = self.flush_proxy(server, now);
                self.drill_rt[d].converged_at = eff;
                engine.schedule(
                    now + VALIDATION_PERIOD.as_nanos(),
                    CpEv::WithdrawOld { drill: d },
                );
            }
            DrillKind::ScaleOut { .. } => {
                let eff = self.advertise(pod, now);
                self.drill_rt[d].converged_at = eff;
            }
            _ => {
                // Crash respawn: convergence was pinned at the withdraw;
                // the replacement simply re-advertises.
                self.advertise(pod, now);
            }
        }
        engine.schedule(
            now + self.bfd[pod].rx_interval().as_nanos(),
            CpEv::BfdTick(pod),
        );
    }

    fn handle_withdraw_old(&mut self, d: usize, now: SimTime) {
        let DrillKind::VipMigration { server, .. } = self.cfg.drills[d].kind else {
            unreachable!("WithdrawOld only scheduled by migrations");
        };
        let mut m = self.drill_rt[d]
            .migration
            .take()
            .expect("migration running");
        m.withdraw_old(&mut self.proxies[server], now)
            .expect("validation period has elapsed");
        self.drill_rt[d].migration = Some(m);
        // The new pod still serves the VIP, so the proxy must not have
        // queued an upstream withdraw — §7's no-gap guarantee.
        let eff = self.flush_proxy(server, now);
        assert!(eff.is_none(), "migration must not disturb upstream routes");
        let old = self.drill_rt[d].old_pod.expect("recorded at drill time");
        self.pods[old].retired = true;
    }

    fn handle_bfd_tick(&mut self, p: usize, now: SimTime, engine: &mut Engine<CpEv>) {
        if self.pods[p].retired {
            return;
        }
        if self.pods[p].alive && !self.pods[p].silenced {
            let was_down = self.bfd[p].state() == BfdState::Down;
            self.bfd[p].on_packet(now);
            if was_down {
                // Link restored after a storm: the iBGP session re-forms
                // and the pod's VIP is re-advertised upstream.
                self.advertise(p, now);
            }
        }
        if self.bfd[p].check(now) {
            self.on_pod_down(p, now, engine);
        }
        if !self.pods[p].retired {
            engine.schedule(now + self.bfd[p].rx_interval().as_nanos(), CpEv::BfdTick(p));
        }
    }

    fn handle_storm_end(&mut self, d: usize) {
        let DrillKind::BfdFlapStorm { server, .. } = self.cfg.drills[d].kind else {
            unreachable!("StormEnd only scheduled by storms");
        };
        for pod in &mut self.pods {
            if pod.server == server {
                pod.silenced = false;
            }
        }
    }
}

impl AzSimulation {
    /// Creates the simulation. Panics when the config is inconsistent
    /// (overlapping drill windows, out-of-range targets, zero rate).
    pub fn new(cfg: AzConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AzConfig {
        &self.cfg
    }

    /// Runs both phases and returns the merged report. `fleet_cfg` only
    /// affects wall-clock: any `shards × threads` geometry produces
    /// identical bytes.
    pub fn run(&self, fleet_cfg: &FleetConfig) -> AzReport {
        let cfg = &self.cfg;
        let horizon = cfg.horizon();

        // ---- Phase 1: the shared control plane, single-threaded. ----
        let mut cp = Cp::new(cfg);
        let mut engine: Engine<CpEv> = Engine::new();
        let mut script = EventScript::new();
        for (i, d) in cfg.drills.iter().enumerate() {
            script.at(d.at, CpEv::Drill(i));
        }
        script.schedule_into(&mut engine);
        for p in 0..cp.pods.len() {
            engine.schedule(SimTime::from_nanos(cp.bfd[p].rx_interval().as_nanos()), {
                CpEv::BfdTick(p)
            });
        }
        while let Some((now, ev)) = engine.pop_until(horizon) {
            match ev {
                CpEv::BfdTick(p) => cp.handle_bfd_tick(p, now, &mut engine),
                CpEv::Drill(d) => cp.handle_drill(d, now, &mut engine),
                CpEv::StormEnd { drill } => cp.handle_storm_end(drill),
                CpEv::PodReady { pod, drill } => cp.handle_pod_ready(pod, drill, now, &mut engine),
                CpEv::WithdrawOld { drill } => cp.handle_withdraw_old(drill, now),
            }
        }

        // ---- Compile the steering timeline into per-pod segments. ----
        let mut bounds: BTreeSet<u64> = BTreeSet::new();
        bounds.insert(0);
        bounds.insert(horizon.as_nanos());
        for (t, _) in &cp.snapshots {
            if *t < horizon {
                bounds.insert(t.as_nanos());
            }
        }
        for (a, b) in cp.outages.iter().flatten() {
            for t in [a, b] {
                if *t < horizon {
                    bounds.insert(t.as_nanos());
                }
            }
        }
        for (a, b, _) in cp.vf_windows.iter().flatten() {
            for t in [a, b] {
                if *t < horizon {
                    bounds.insert(t.as_nanos());
                }
            }
        }
        for d in &cfg.drills {
            bounds.insert(d.at.as_nanos());
            bounds.insert(d.window_end.as_nanos());
        }
        let bounds: Vec<u64> = bounds.into_iter().collect();

        let vni_of = |t: SimTime| -> u32 {
            cfg.drills
                .iter()
                .position(|d| d.at <= t && t < d.window_end)
                .map_or(0, |i| i as u32 + 1)
        };

        let mut per_pod: Vec<Vec<SteerSegment>> = cp.pods.iter().map(|_| Vec::new()).collect();
        let mut ledgers: Vec<Ledger> = vec![Ledger::default(); cfg.drills.len() + 1];
        for pair in bounds.windows(2) {
            let (t0, t1) = (SimTime::from_nanos(pair[0]), SimTime::from_nanos(pair[1]));
            let span = t1.saturating_since(t0);
            if span == 0 {
                continue;
            }
            let vni = vni_of(t0);
            let ledger = &mut ledgers[vni as usize];
            let serving = cp.serving_at(t0);
            let routed: Vec<usize> = serving.iter().filter_map(|s| *s).collect();
            if routed.is_empty() {
                // Total outage: the whole aggregate goes nowhere.
                let gap = 1_000_000_000 / cfg.pps;
                let lost = span.div_ceil(gap.max(1));
                ledger.offered += lost;
                ledger.blackholed += lost;
                continue;
            }
            let gap = routed.len() as u64 * 1_000_000_000 / cfg.pps;
            assert!(gap > 0, "per-VIP share must have a positive gap");
            {
                let mut uniq = routed.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(
                    uniq.len(),
                    routed.len(),
                    "a pod serves at most one VIP at a time"
                );
            }
            for &p in &routed {
                let in_outage = cp.outages[p].iter().any(|(a, b)| *a <= t0 && t0 < *b);
                let drop_mod = cp.vf_windows[p]
                    .iter()
                    .find(|(a, b, _)| *a <= t0 && t0 < *b)
                    .map(|(_, _, m)| *m);
                let seg = SteerSegment {
                    start: t0,
                    end: t1,
                    gap_ns: gap,
                    vni,
                    drop_mod: if in_outage { None } else { drop_mod },
                };
                ledger.offered += seg.packets();
                if in_outage {
                    ledger.blackholed += seg.packets();
                } else {
                    ledger.vf_lost += seg.edge_lost();
                    per_pod[p].push(seg);
                }
            }
        }

        // ---- Phase 2: pod shard trains on the lockstep shard layer. ----
        // True in-scenario sharding (sim::shard): every pod with traffic
        // becomes one pod of a single ShardedPodSimulation, grouped into
        // `fleet_cfg.shards` lockstep shards over `fleet_cfg.threads`
        // workers. Pod configs and seeds are bit-identical to the old
        // fleet-of-independent-scenarios path, so the merged report — and
        // every RESULT line derived from it — is unchanged at any
        // shards × threads geometry.
        let mut sharded = ShardedPodSimulation::new();
        let mut shard_pods = Vec::new();
        for (p, segs) in per_pod.iter().enumerate() {
            if segs.is_empty() {
                continue;
            }
            shard_pods.push(p);
            let seed = cfg.seed.wrapping_add(7919 * (p as u64 + 1));
            let mut sc = SimConfig::new(cfg.data_cores, cfg.role.service());
            sc.table_scale = cfg.table_scale;
            sc.track_tenant_latency = true;
            sc.seed = seed;
            let flowset = FlowSet::generate(cfg.flows_per_pod, None, seed ^ 0x5a5a);
            let src = SteeredSource::new(flowset, cfg.len_bytes, segs.clone());
            sharded.push(sc, Box::new(src), cfg.duration);
        }
        let reports = sharded.run(fleet_cfg.shards, fleet_cfg.threads);
        let merged = SimReport::merge_ordered(&reports);

        // ---- Attribute per-window outcomes. ----
        let window_report = |name: &str,
                             vni: u32,
                             start: SimTime,
                             end: SimTime,
                             ledger: &Ledger,
                             convergence: SimTime,
                             routes_from_target: Option<usize>|
         -> DrillReport {
            let delivered = merged.tenant_delivered.get(&vni).map_or(0, |m| m.total());
            let p99_ns = merged
                .tenant_latency
                .get(&vni)
                .map_or(0, |h| h.percentile(0.99));
            DrillReport {
                name: name.to_string(),
                vni,
                start,
                end,
                offered: ledger.offered,
                blackholed: ledger.blackholed,
                vf_lost: ledger.vf_lost,
                expected_delivered: ledger.offered - ledger.blackholed - ledger.vf_lost,
                delivered,
                delivery_ratio: if ledger.offered == 0 {
                    1.0
                } else {
                    delivered as f64 / ledger.offered as f64
                },
                p99_ns,
                convergence,
                routes_from_target,
            }
        };

        let baseline = window_report(
            "baseline",
            0,
            SimTime::ZERO,
            horizon,
            &ledgers[0],
            SimTime::ZERO,
            None,
        );
        let drills: Vec<DrillReport> = cfg
            .drills
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let rt = &cp.drill_rt[i];
                let convergence = rt.converged_at.map_or(SimTime::ZERO, |at| {
                    SimTime::from_nanos(at.saturating_since(d.at))
                });
                window_report(
                    d.kind.name(),
                    i as u32 + 1,
                    d.at,
                    d.window_end,
                    &ledgers[i + 1],
                    convergence,
                    rt.routes_from_target,
                )
            })
            .collect();

        let mut route_series = TimeSeries::new();
        for (t, serving) in &cp.snapshots {
            let routed = serving.iter().filter(|s| s.is_some()).count();
            route_series.push(t.as_nanos(), routed as f64);
        }

        AzReport {
            merged,
            baseline,
            drills,
            route_series,
            shards: shard_pods.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_crash_cfg() -> AzConfig {
        let mut cfg = AzConfig::new(2, 2);
        cfg.pps = 800;
        cfg.duration = SimTime::from_secs(16);
        cfg.drills = vec![DrillSpec {
            at: SimTime::from_secs(1),
            window_end: SimTime::from_secs(13),
            kind: DrillKind::PodCrash { server: 0, slot: 0 },
        }];
        cfg
    }

    #[test]
    fn crash_blackholes_until_withdraw_then_respawn_restores_routes() {
        let sim = AzSimulation::new(mini_crash_cfg());
        let report = sim.run(&FleetConfig::serial());
        let drill = &report.drills[0];
        assert_eq!(drill.name, "pod-crash");
        assert!(drill.blackholed > 0, "stale-route window must lose packets");
        // Detection: last BFD packet lands at 0.95 s (the 1.0 s tick finds
        // the pod dead), Down declared at the 1.15 s tick, one /32
        // withdrawn at 20 us per route.
        assert_eq!(drill.convergence, SimTime::from_nanos(150_000_000 + 20_000));
        // Conservation: everything not blackholed is delivered.
        assert_eq!(drill.delivered, drill.expected_delivered);
        assert_eq!(
            report.baseline.delivered,
            report.baseline.expected_delivered
        );
        assert!(drill.delivery_ratio < 1.0 && drill.delivery_ratio > 0.9);
        // The respawned pod re-advertised: all 4 VIPs routed at the end.
        let (_, last_routes) = *report.route_series.points().last().expect("snapshots");
        assert_eq!(last_routes, 4.0);
        // Crashed pod is replaced, so one extra shard ran.
        assert_eq!(report.shards, 5);
    }

    #[test]
    fn shard_and_thread_geometry_never_changes_a_byte() {
        let sim = AzSimulation::new(mini_crash_cfg());
        let serial = sim.run(&FleetConfig::serial()).render(sim.config());
        for (shards, threads) in [(1, 2), (2, 2), (4, 2)] {
            let wide = sim
                .run(&FleetConfig { threads, shards })
                .render(sim.config());
            assert_eq!(serial, wide, "shards={shards} threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_drill_windows_rejected() {
        let mut cfg = AzConfig::new(2, 2);
        cfg.drills = vec![
            DrillSpec {
                at: SimTime::from_secs(1),
                window_end: SimTime::from_secs(20),
                kind: DrillKind::PodCrash { server: 0, slot: 0 },
            },
            DrillSpec {
                at: SimTime::from_secs(15),
                window_end: SimTime::from_secs(30),
                kind: DrillKind::ScaleOut { server: 1 },
            },
        ];
        AzSimulation::new(cfg);
    }
}
