//! Parallel scenario fleets with deterministic, order-preserving results.
//!
//! Every figure/table harness ultimately runs a handful of *independent*
//! [`PodSimulation`]s — one per sweep point, per tenant arm, or per
//! co-resident GW pod — and then reads the reports in a fixed order. The
//! fleet runner exploits that independence: it fans the scenarios out over
//! OS threads (each shard owns its own simulation and RNG — nothing is
//! shared), then hands the reports back **in scenario order**, so the
//! output is bit-identical to the serial loop regardless of thread count
//! or completion order (DESIGN.md §4d).
//!
//! `threads = 1` does not spawn at all: scenarios run on the calling
//! thread in the plain serial loop, reproducing today's behaviour exactly.
//!
//! Scenarios need not be single pods: [`Scenario::new_sharded`] wraps a
//! whole multi-pod coupled run (a [`ShardedPodSimulation`]) as one fleet
//! entry, so a fleet of sharded scenarios shares one thread budget — the
//! fleet fans scenarios out and each sharded scenario fans its pods out
//! over its share of [`FleetConfig::threads`] (DESIGN.md §4g).
//!
//! ```
//! use albatross_container::fleet::{FleetConfig, Scenario, ScenarioFleet};
//! use albatross_container::SimConfig;
//! use albatross_gateway::services::ServiceKind;
//! use albatross_sim::SimTime;
//! use albatross_workload::{ConstantRateSource, FlowSet, TrafficSource};
//!
//! let duration = SimTime(2_000_000);
//! let mut fleet = ScenarioFleet::new();
//! for cores in [1usize, 2] {
//!     fleet.push(Scenario::new(
//!         format!("cores={cores}"),
//!         duration,
//!         move || {
//!             let cfg = SimConfig::new(cores, ServiceKind::VpcVpc);
//!             let flows = FlowSet::generate(64, Some(1000), 7);
//!             let src =
//!                 ConstantRateSource::new(flows, 1_000_000, 256, SimTime::ZERO, duration);
//!             (cfg, Box::new(src) as Box<dyn TrafficSource>)
//!         },
//!     ));
//! }
//! let reports = fleet.run(&FleetConfig { threads: 2, shards: 1 });
//! assert_eq!(reports.len(), 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use albatross_sim::SimTime;
use albatross_workload::TrafficSource;

use crate::simrun::{PodSimulation, ShardedPodSimulation, SimConfig, SimReport};

/// Builds one shard's `(config, traffic source)` pair. The closure runs on
/// the shard's worker thread, so each shard constructs (and seeds) its own
/// RNG — nothing crosses threads except the returned [`SimReport`].
pub type ScenarioBuilder = Box<dyn Fn() -> (SimConfig, Box<dyn TrafficSource>) + Send + Sync>;

/// Builds the pods of one *sharded* scenario, in pod order. Sources must
/// be `Send` because the pods execute on lockstep worker threads.
pub type ShardedScenarioBuilder =
    Box<dyn Fn() -> Vec<(SimConfig, Box<dyn TrafficSource + Send>)> + Send + Sync>;

enum Build {
    /// One pod, one classic serial loop.
    Single(ScenarioBuilder),
    /// A multi-pod coupled run on the lockstep shard layer; the report is
    /// the ordered merge of the per-pod reports.
    Sharded(ShardedScenarioBuilder),
}

/// One independent simulation in a fleet: a label, a duration, and a
/// builder that materializes the simulation on whichever thread runs it.
pub struct Scenario {
    /// Human-readable label, carried into [`FleetResult`].
    pub name: String,
    /// Virtual duration to run the pod for.
    pub duration: SimTime,
    build: Build,
}

impl Scenario {
    /// Creates a scenario from a builder closure.
    pub fn new(
        name: impl Into<String>,
        duration: SimTime,
        builder: impl Fn() -> (SimConfig, Box<dyn TrafficSource>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            duration,
            build: Build::Single(Box::new(builder)),
        }
    }

    /// Creates a multi-pod scenario that runs on the lockstep shard layer
    /// ([`ShardedPodSimulation`]): the builder returns every pod's
    /// `(config, source)` in pod order, the run uses
    /// [`FleetConfig::shards`] shard groups and this scenario's share of
    /// the fleet's thread budget, and the scenario's report is
    /// [`SimReport::merge_ordered`] over the per-pod reports — byte-
    /// identical at any `shards × threads`.
    pub fn new_sharded(
        name: impl Into<String>,
        duration: SimTime,
        builder: impl Fn() -> Vec<(SimConfig, Box<dyn TrafficSource + Send>)> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            duration,
            build: Build::Sharded(Box::new(builder)),
        }
    }

    /// Runs the scenario. `shards` and `inner_threads` only affect
    /// sharded scenarios (wall clock, never bytes); single-pod scenarios
    /// ignore them.
    fn run(&self, shards: usize, inner_threads: usize) -> SimReport {
        match &self.build {
            Build::Single(builder) => {
                let (cfg, mut source) = builder();
                PodSimulation::new(cfg).run(source.as_mut(), self.duration)
            }
            Build::Sharded(builder) => {
                let mut sharded = ShardedPodSimulation::new();
                for (cfg, source) in builder() {
                    sharded.push(cfg, source, self.duration);
                }
                let reports = sharded.run(shards, inner_threads);
                SimReport::merge_ordered(&reports)
            }
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("duration", &self.duration)
            .finish_non_exhaustive()
    }
}

/// One scenario's outcome, returned in scenario-index order.
#[derive(Debug)]
pub struct FleetResult {
    /// The scenario's label.
    pub name: String,
    /// The simulation report.
    pub report: SimReport,
}

/// How a fleet is executed.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads. `1` runs serially on the calling thread (no spawn);
    /// anything larger fans shards out over that many scoped OS threads.
    pub threads: usize,
    /// Lockstep shard groups for *sharded* scenarios (coupled multi-pod
    /// runs — see [`Scenario::new_sharded`] and `container::az`). Clamped
    /// to each scenario's pod count; single-pod scenarios ignore it. Like
    /// `threads`, this knob never changes a byte of output.
    pub shards: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            threads,
            shards: threads,
        }
    }
}

impl FleetConfig {
    /// A serial config (`threads = 1`, `shards = 1`).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            shards: 1,
        }
    }

    /// Reads the execution geometry from the environment: explicit
    /// `--threads N` / `--shards N` argv pairs (or `--threads=N` /
    /// `--shards=N`) win, then the `ALBATROSS_THREADS` / `ALBATROSS_SHARDS`
    /// env vars, then [`FleetConfig::default`] (`available_parallelism`;
    /// shards defaults to the thread count). Used by every example and
    /// bench harness so CI can pin geometries for determinism diffs.
    pub fn from_env() -> Self {
        let parse = |v: String| v.parse::<usize>().ok();
        let mut threads: Option<usize> = None;
        let mut shards: Option<usize> = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--threads" {
                threads = args.next().and_then(parse).or(threads);
            } else if let Some(v) = a.strip_prefix("--threads=") {
                threads = parse(v.to_string()).or(threads);
            } else if a == "--shards" {
                shards = args.next().and_then(parse).or(shards);
            } else if let Some(v) = a.strip_prefix("--shards=") {
                shards = parse(v.to_string()).or(shards);
            }
        }
        let env_usize = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        let threads = threads
            .or_else(|| env_usize("ALBATROSS_THREADS"))
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1);
        let shards = shards
            .or_else(|| env_usize("ALBATROSS_SHARDS"))
            .unwrap_or(threads)
            .max(1);
        Self { threads, shards }
    }
}

/// An ordered collection of [`Scenario`]s plus the runner that executes
/// them (`FleetRunner` is the internal engine; this is the public face).
#[derive(Debug, Default)]
pub struct ScenarioFleet {
    scenarios: Vec<Scenario>,
}

impl ScenarioFleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a scenario; its index fixes its position in the results.
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios have been pushed.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario and returns the reports **in scenario order**.
    pub fn run(&self, cfg: &FleetConfig) -> Vec<FleetResult> {
        FleetRunner::new(cfg.clone()).run(&self.scenarios)
    }
}

/// Executes a slice of scenarios across a fixed number of threads.
///
/// Work distribution is a shared atomic cursor (work-stealing by index):
/// each worker claims the next unclaimed scenario until none remain. The
/// claim order affects only wall-clock, never results — every report is
/// written to its scenario's dedicated slot and read back in index order.
#[derive(Debug)]
pub struct FleetRunner {
    cfg: FleetConfig,
}

impl FleetRunner {
    /// Creates a runner with the given config.
    pub fn new(cfg: FleetConfig) -> Self {
        Self { cfg }
    }

    /// Runs the scenarios, returning results in scenario-index order.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<FleetResult> {
        let threads = self.cfg.threads.max(1).min(scenarios.len().max(1));
        // Shared thread budget: sharded scenarios split the fleet's thread
        // count evenly (a single sharded scenario gets the whole budget).
        // Wall-clock only — scenario bytes never depend on thread counts.
        let inner_threads = (self.cfg.threads.max(1) / scenarios.len().max(1)).max(1);
        let shards = self.cfg.shards.max(1);
        if threads <= 1 {
            // The exact serial loop every harness ran before the fleet
            // existed — no spawn, no locks (sharded scenarios may still
            // spawn their own lockstep workers when inner_threads > 1).
            return scenarios
                .iter()
                .map(|s| FleetResult {
                    name: s.name.clone(),
                    report: s.run(shards, inner_threads),
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<SimReport>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(i) else { break };
                    let report = s.run(shards, inner_threads);
                    *slots[i].lock().expect("fleet slot poisoned") = Some(report);
                });
            }
        });

        scenarios
            .iter()
            .zip(slots)
            .map(|(s, slot)| FleetResult {
                name: s.name.clone(),
                report: slot
                    .into_inner()
                    .expect("fleet slot poisoned")
                    .expect("worker finished without a report"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_gateway::services::ServiceKind;
    use albatross_workload::{ConstantRateSource, FlowSet};

    fn small_fleet(n: usize) -> ScenarioFleet {
        let duration = SimTime(1_500_000);
        let mut fleet = ScenarioFleet::new();
        for i in 0..n {
            fleet.push(Scenario::new(format!("shard{i}"), duration, move || {
                let cfg = SimConfig::new(1 + i % 2, ServiceKind::VpcVpc);
                let flows = FlowSet::generate(64, Some(1000 + i as u32), 11 + i as u64);
                let src = ConstantRateSource::new(flows, 2_000_000, 256, SimTime::ZERO, duration);
                (cfg, Box::new(src) as Box<dyn TrafficSource>)
            }));
        }
        fleet
    }

    #[test]
    fn results_come_back_in_scenario_order() {
        let fleet = small_fleet(5);
        let results = fleet.run(&FleetConfig {
            threads: 3,
            shards: 1,
        });
        let names: Vec<_> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["shard0", "shard1", "shard2", "shard3", "shard4"]);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let fleet = small_fleet(4);
        let serial = fleet.run(&FleetConfig::serial());
        let parallel = fleet.run(&FleetConfig {
            threads: 4,
            shards: 1,
        });
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.report.processed, b.report.processed);
            assert_eq!(a.report.transmitted, b.report.transmitted);
            assert_eq!(
                a.report.latency.percentile(0.99),
                b.report.latency.percentile(0.99)
            );
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let fleet = small_fleet(2);
        let results = fleet.run(&FleetConfig {
            threads: 16,
            shards: 1,
        });
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.report.processed > 0));
    }

    #[test]
    fn sharded_scenarios_compose_with_the_fleet() {
        // A mixed fleet: one classic single-pod scenario plus one sharded
        // three-pod scenario. Bytes must not depend on the geometry.
        let duration = SimTime(1_500_000);
        let build_fleet = || {
            let mut fleet = ScenarioFleet::new();
            fleet.push(Scenario::new("single", duration, move || {
                let cfg = SimConfig::new(1, ServiceKind::VpcVpc);
                let flows = FlowSet::generate(64, Some(1000), 11);
                let src = ConstantRateSource::new(flows, 2_000_000, 256, SimTime::ZERO, duration);
                (cfg, Box::new(src) as Box<dyn TrafficSource>)
            }));
            fleet.push(Scenario::new_sharded("coupled", duration, move || {
                (0..3u64)
                    .map(|p| {
                        let cfg = SimConfig::new(1, ServiceKind::VpcVpc);
                        let flows = FlowSet::generate(64, Some(2000 + p as u32), 13 + p);
                        let src =
                            ConstantRateSource::new(flows, 2_000_000, 256, SimTime::ZERO, duration);
                        (cfg, Box::new(src) as Box<dyn TrafficSource + Send>)
                    })
                    .collect()
            }));
            fleet
        };
        let serial = build_fleet().run(&FleetConfig::serial());
        for cfg in [
            FleetConfig {
                threads: 2,
                shards: 3,
            },
            FleetConfig {
                threads: 8,
                shards: 2,
            },
        ] {
            let wide = build_fleet().run(&cfg);
            for (a, b) in serial.iter().zip(&wide) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.report.offered, b.report.offered);
                assert_eq!(a.report.processed, b.report.processed);
                assert_eq!(a.report.transmitted, b.report.transmitted);
                assert_eq!(a.report.latency.max(), b.report.latency.max());
                assert_eq!(
                    a.report.cache_hit_rate.to_bits(),
                    b.report.cache_hit_rate.to_bits()
                );
            }
        }
        // The sharded scenario's report is a real multi-pod merge.
        assert_eq!(serial[1].report.per_core_processed.len(), 3);
    }

    #[test]
    fn empty_fleet_returns_empty() {
        let fleet = ScenarioFleet::new();
        assert!(fleet.is_empty());
        assert!(fleet.run(&FleetConfig::default()).is_empty());
    }
}
