//! Parallel scenario fleets with deterministic, order-preserving results.
//!
//! Every figure/table harness ultimately runs a handful of *independent*
//! [`PodSimulation`]s — one per sweep point, per tenant arm, or per
//! co-resident GW pod — and then reads the reports in a fixed order. The
//! fleet runner exploits that independence: it fans the scenarios out over
//! OS threads (each shard owns its own simulation and RNG — nothing is
//! shared), then hands the reports back **in scenario order**, so the
//! output is bit-identical to the serial loop regardless of thread count
//! or completion order (DESIGN.md §4d).
//!
//! `threads = 1` does not spawn at all: scenarios run on the calling
//! thread in the plain serial loop, reproducing today's behaviour exactly.
//!
//! ```
//! use albatross_container::fleet::{FleetConfig, Scenario, ScenarioFleet};
//! use albatross_container::SimConfig;
//! use albatross_gateway::services::ServiceKind;
//! use albatross_sim::SimTime;
//! use albatross_workload::{ConstantRateSource, FlowSet, TrafficSource};
//!
//! let duration = SimTime(2_000_000);
//! let mut fleet = ScenarioFleet::new();
//! for cores in [1usize, 2] {
//!     fleet.push(Scenario::new(
//!         format!("cores={cores}"),
//!         duration,
//!         move || {
//!             let cfg = SimConfig::new(cores, ServiceKind::VpcVpc);
//!             let flows = FlowSet::generate(64, Some(1000), 7);
//!             let src =
//!                 ConstantRateSource::new(flows, 1_000_000, 256, SimTime::ZERO, duration);
//!             (cfg, Box::new(src) as Box<dyn TrafficSource>)
//!         },
//!     ));
//! }
//! let reports = fleet.run(&FleetConfig { threads: 2 });
//! assert_eq!(reports.len(), 2);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use albatross_sim::SimTime;
use albatross_workload::TrafficSource;

use crate::simrun::{PodSimulation, SimConfig, SimReport};

/// Builds one shard's `(config, traffic source)` pair. The closure runs on
/// the shard's worker thread, so each shard constructs (and seeds) its own
/// RNG — nothing crosses threads except the returned [`SimReport`].
pub type ScenarioBuilder = Box<dyn Fn() -> (SimConfig, Box<dyn TrafficSource>) + Send + Sync>;

/// One independent simulation in a fleet: a label, a duration, and a
/// builder that materializes the simulation on whichever thread runs it.
pub struct Scenario {
    /// Human-readable label, carried into [`FleetResult`].
    pub name: String,
    /// Virtual duration to run the pod for.
    pub duration: SimTime,
    builder: ScenarioBuilder,
}

impl Scenario {
    /// Creates a scenario from a builder closure.
    pub fn new(
        name: impl Into<String>,
        duration: SimTime,
        builder: impl Fn() -> (SimConfig, Box<dyn TrafficSource>) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            duration,
            builder: Box::new(builder),
        }
    }

    fn run(&self) -> SimReport {
        let (cfg, mut source) = (self.builder)();
        PodSimulation::new(cfg).run(source.as_mut(), self.duration)
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("duration", &self.duration)
            .finish_non_exhaustive()
    }
}

/// One scenario's outcome, returned in scenario-index order.
#[derive(Debug)]
pub struct FleetResult {
    /// The scenario's label.
    pub name: String,
    /// The simulation report.
    pub report: SimReport,
}

/// How a fleet is executed.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads. `1` runs serially on the calling thread (no spawn);
    /// anything larger fans shards out over that many scoped OS threads.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl FleetConfig {
    /// A serial config (`threads = 1`).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Reads the thread count from the environment: an explicit
    /// `--threads N` argv pair wins, then the `ALBATROSS_THREADS` env var,
    /// then [`FleetConfig::default`] (`available_parallelism`). Used by
    /// every example and bench harness so CI can pin `--threads 1` for
    /// determinism diffs.
    pub fn from_env() -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--threads" {
                if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                    return Self { threads: n.max(1) };
                }
            } else if let Some(v) = a.strip_prefix("--threads=") {
                if let Ok(n) = v.parse::<usize>() {
                    return Self { threads: n.max(1) };
                }
            }
        }
        if let Ok(v) = std::env::var("ALBATROSS_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return Self { threads: n.max(1) };
            }
        }
        Self::default()
    }
}

/// An ordered collection of [`Scenario`]s plus the runner that executes
/// them (`FleetRunner` is the internal engine; this is the public face).
#[derive(Debug, Default)]
pub struct ScenarioFleet {
    scenarios: Vec<Scenario>,
}

impl ScenarioFleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a scenario; its index fixes its position in the results.
    pub fn push(&mut self, scenario: Scenario) {
        self.scenarios.push(scenario);
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when no scenarios have been pushed.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario and returns the reports **in scenario order**.
    pub fn run(&self, cfg: &FleetConfig) -> Vec<FleetResult> {
        FleetRunner::new(cfg.clone()).run(&self.scenarios)
    }
}

/// Executes a slice of scenarios across a fixed number of threads.
///
/// Work distribution is a shared atomic cursor (work-stealing by index):
/// each worker claims the next unclaimed scenario until none remain. The
/// claim order affects only wall-clock, never results — every report is
/// written to its scenario's dedicated slot and read back in index order.
#[derive(Debug)]
pub struct FleetRunner {
    cfg: FleetConfig,
}

impl FleetRunner {
    /// Creates a runner with the given config.
    pub fn new(cfg: FleetConfig) -> Self {
        Self { cfg }
    }

    /// Runs the scenarios, returning results in scenario-index order.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<FleetResult> {
        let threads = self.cfg.threads.max(1).min(scenarios.len().max(1));
        if threads <= 1 {
            // The exact serial loop every harness ran before the fleet
            // existed — no spawn, no locks.
            return scenarios
                .iter()
                .map(|s| FleetResult {
                    name: s.name.clone(),
                    report: s.run(),
                })
                .collect();
        }

        let slots: Vec<Mutex<Option<SimReport>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = scenarios.get(i) else { break };
                    let report = s.run();
                    *slots[i].lock().expect("fleet slot poisoned") = Some(report);
                });
            }
        });

        scenarios
            .iter()
            .zip(slots)
            .map(|(s, slot)| FleetResult {
                name: s.name.clone(),
                report: slot
                    .into_inner()
                    .expect("fleet slot poisoned")
                    .expect("worker finished without a report"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_gateway::services::ServiceKind;
    use albatross_workload::{ConstantRateSource, FlowSet};

    fn small_fleet(n: usize) -> ScenarioFleet {
        let duration = SimTime(1_500_000);
        let mut fleet = ScenarioFleet::new();
        for i in 0..n {
            fleet.push(Scenario::new(format!("shard{i}"), duration, move || {
                let cfg = SimConfig::new(1 + i % 2, ServiceKind::VpcVpc);
                let flows = FlowSet::generate(64, Some(1000 + i as u32), 11 + i as u64);
                let src = ConstantRateSource::new(flows, 2_000_000, 256, SimTime::ZERO, duration);
                (cfg, Box::new(src) as Box<dyn TrafficSource>)
            }));
        }
        fleet
    }

    #[test]
    fn results_come_back_in_scenario_order() {
        let fleet = small_fleet(5);
        let results = fleet.run(&FleetConfig { threads: 3 });
        let names: Vec<_> = results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["shard0", "shard1", "shard2", "shard3", "shard4"]);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let fleet = small_fleet(4);
        let serial = fleet.run(&FleetConfig::serial());
        let parallel = fleet.run(&FleetConfig { threads: 4 });
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.report.processed, b.report.processed);
            assert_eq!(a.report.transmitted, b.report.transmitted);
            assert_eq!(
                a.report.latency.percentile(0.99),
                b.report.latency.percentile(0.99)
            );
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let fleet = small_fleet(2);
        let results = fleet.run(&FleetConfig { threads: 16 });
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.report.processed > 0));
    }

    #[test]
    fn empty_fleet_returns_empty() {
        let fleet = ScenarioFleet::new();
        assert!(fleet.is_empty());
        assert!(fleet.run(&FleetConfig::default()).is_empty());
    }
}
