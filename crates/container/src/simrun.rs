//! The end-to-end GW pod simulation.
//!
//! [`PodSimulation`] wires every subsystem of the reproduction together in
//! one discrete-event loop, mirroring Fig. 1's data path:
//!
//! ```text
//! workload source ──► [rate limiter] ──► RX pipeline (basic/overload/PLB
//!   dispatch/DMA) ──► per-core RX queues ──► service pipeline over the
//!   L3/DRAM model ──► TX DMA ──► plb_reorder (legal + reorder check)
//!   ──► egress (latency recorded)
//! ```
//!
//! Every bench harness that reports end-to-end behaviour (Tab. 3, Fig. 4,
//! 5, 8, 9, 10, 11, 12, 13, 14, 16, 17) drives this loop with a different
//! [`SimConfig`] and traffic source. Runs are deterministic per seed.
//!
//! # Burst datapath
//!
//! The inner loop is burst-mode (DPDK style): source packets are admitted
//! in batches of up to [`BurstConfig::burst_size`] without bouncing each
//! one through the event heap, zero-jitter CPU returns short-circuit the
//! heap the same way, and every egress/timeout drain goes through
//! preallocated scratch buffers ([`EgressBuf`], a timeout list, the
//! utilization sample buffer) — steady state performs no allocation.
//! Batching is *ordering-exact*: a packet is only admitted inline while it
//! is strictly earlier than every pending event, so the event sequence —
//! and therefore the whole report — is bit-identical for every
//! `burst_size`, with `burst_size = 1` reproducing the scalar per-packet
//! loop literally.

use std::collections::HashMap;

use albatross_core::engine::{
    Egress, EgressBuf, IngressDecision, LbMode, PlbEngine, PlbEngineConfig,
};
use albatross_core::ratelimit::{RateLimiterConfig, TwoStageRateLimiter};
use albatross_core::reorder::ReorderConfig;
use albatross_fpga::basic::PayloadBuffer;
use albatross_fpga::burst::BurstConfig;
use albatross_fpga::dma::DmaEngine;
use albatross_fpga::pipeline::{Direction, NicPipelineLatency};
use albatross_fpga::pkt::{DeliveryMode, NicPacket};
use albatross_fpga::tier::{SessionTier, TierConfig, TierStats, TieredSessionEngine};
use albatross_gateway::flowstate::{FlowStateConfig, FlowStateEngine, FlowVerdict};
use albatross_gateway::services::{PacketAction, ServiceKind, ServicePipeline};
use albatross_gateway::worker::DataCore;
use albatross_mem::tables::CloudGatewayTables;
use albatross_mem::{DramModel, MemorySystem, NumaBalancing, NumaTopology, Placement, SharedCache};
use albatross_sim::{
    Engine, EpochShard, LatencyModel, LockstepRunner, Lookahead, ShardMsg, SimRng, SimTime,
};
use albatross_telemetry::{CoreUtilization, LatencyHistogram, RateMeter, TimeSeries};
use albatross_workload::{PacketDesc, TrafficSource};

/// Full configuration of one simulated pod.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Data cores.
    pub data_cores: usize,
    /// Service pipeline the pod runs.
    pub service: ServiceKind,
    /// PLB or RSS.
    pub mode: LbMode,
    /// Order-preserving queues (ignored in RSS mode).
    pub ordqs: usize,
    /// Reorder FIFO/BUF/BITMAP depth.
    pub reorder_depth: usize,
    /// Reorder head timeout in ns.
    pub reorder_timeout_ns: u64,
    /// NIC-side tenant rate limiter, if enabled.
    pub rate_limiter: Option<RateLimiterConfig>,
    /// Tiered FPGA/DPU/CPU session co-offload, if enabled. Placement runs
    /// per packet before the service chain; hardware-resident flows skip
    /// the chain's session lookup, DPU-served packets pay the detour
    /// latency off-core, CPU-served packets pay the session-write cost
    /// on-core.
    pub session_tiers: Option<TierConfig>,
    /// Hardware flow-state install frontier (the CPS bottleneck), if
    /// enabled. Every packet is classified against a fixed-capacity flow
    /// table: residents skip the service chain's session step, first
    /// packets pay the install cost, and packets denied by the
    /// install-rate budget (or a full table) take the software slow path.
    /// Mutually exclusive with [`session_tiers`](Self::session_tiers),
    /// which models placement *across* tiers rather than the insertion
    /// rate *into* one; when both are set, `session_tiers` wins and this
    /// engine is ignored.
    pub flow_state: Option<FlowStateConfig>,
    /// Per-core RX descriptor-queue depth.
    pub rx_queue_depth: usize,
    /// Shared L3 size in bytes.
    pub cache_bytes: usize,
    /// L3 associativity.
    pub cache_ways: usize,
    /// DDR5 frequency in MHz.
    pub mem_freq_mhz: u32,
    /// Working-set scale (1.0 = production, several GB).
    pub table_scale: f64,
    /// CPU/memory placement.
    pub placement: Placement,
    /// Kernel automatic NUMA balancing on/off (Fig. 17).
    pub numa_balancing: bool,
    /// Nominal load (0–1) fed to the NUMA-balancing stall model.
    pub nominal_load: f64,
    /// Drop flows with `hash % m == 0` at the ACL (Fig. 12 loss source).
    pub acl_drop_modulus: Option<u64>,
    /// Whether ACL drops set the PLB drop flag (true in production;
    /// false = Fig. 12 baseline).
    pub use_drop_flag: bool,
    /// Extra software-stack latency per packet (driver batching, deferred
    /// TX, corner-case code paths). Delays the packet's return to the NIC
    /// without occupying the data core.
    pub extra_jitter: Option<LatencyModel>,
    /// Core-utilization sampling window.
    pub sample_window: SimTime,
    /// Window of the per-tenant delivered-rate meters (Fig. 13/14 use
    /// compressed time, so smaller windows than 1 s).
    pub tenant_rate_window: SimTime,
    /// Record a per-VNI latency histogram alongside the delivered-rate
    /// meters. Off by default (it costs a hash probe per egress); the AZ
    /// resilience harness turns it on so each failure drill — whose
    /// traffic carries a drill-specific VNI — can report its own p99.
    pub track_tenant_latency: bool,
    /// Delivery mode for data packets (appendix A: header-only delivery
    /// keeps payloads in the NIC buffer and saves PCIe bandwidth).
    pub delivery: DeliveryMode,
    /// NIC payload-buffer capacity in bytes (used in header-only mode).
    pub payload_buffer_bytes: u64,
    /// Statistics reset point (cache warm-up).
    pub warmup: SimTime,
    /// Burst datapath configuration. `burst_size = 1` reproduces the
    /// scalar per-packet loop bit-for-bit; larger sizes batch identically
    /// (see the module docs) but amortize the event-heap traffic.
    pub burst: BurstConfig,
    /// Scenario seed.
    pub seed: u64,
}

impl SimConfig {
    /// Sensible defaults for a pod of `data_cores` running `service`:
    /// production reorder geometry, production L3/DRAM, PLB mode.
    pub fn new(data_cores: usize, service: ServiceKind) -> Self {
        Self {
            data_cores,
            service,
            mode: LbMode::Plb,
            ordqs: (data_cores / 6).clamp(1, 8),
            reorder_depth: 4096,
            reorder_timeout_ns: 100_000,
            rate_limiter: None,
            session_tiers: None,
            flow_state: None,
            rx_queue_depth: 1024,
            cache_bytes: 192 * 1024 * 1024,
            cache_ways: 16,
            mem_freq_mhz: 4800,
            table_scale: 1.0,
            placement: Placement::IntraNuma,
            numa_balancing: false,
            nominal_load: 0.5,
            acl_drop_modulus: None,
            use_drop_flag: true,
            extra_jitter: None,
            sample_window: SimTime::from_millis(10),
            tenant_rate_window: SimTime::from_secs(1),
            track_tenant_latency: false,
            delivery: DeliveryMode::FullPacket,
            payload_buffer_bytes: 64 * 1024 * 1024,
            warmup: SimTime::ZERO,
            burst: BurstConfig::default(),
            seed: 1,
        }
    }
}

/// Everything measured during a run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured interval (after warm-up) in seconds.
    pub measured_secs: f64,
    /// Packets offered by the source (after warm-up).
    pub offered: u64,
    /// Packets fully processed by data cores.
    pub processed: u64,
    /// Packets transmitted (in order + best effort).
    pub transmitted: u64,
    /// In-order transmissions.
    pub in_order: u64,
    /// Out-of-order (best-effort) transmissions.
    pub out_of_order: u64,
    /// Dropped by the NIC rate limiter.
    pub dropped_ratelimit: u64,
    /// Dropped at ingress (reorder FIFO full).
    pub dropped_ingress_full: u64,
    /// Dropped at per-core RX queues.
    pub dropped_rx_queue: u64,
    /// Dropped by the ACL on the CPU.
    pub dropped_acl: u64,
    /// Reorder head timeouts (HOL events).
    pub hol_timeouts: u64,
    /// Reorder slots released via the drop flag.
    pub drop_flag_releases: u64,
    /// End-to-end (NIC in → NIC out) latency.
    pub latency: LatencyHistogram,
    /// Per-core utilization samples.
    pub core_util: CoreUtilization,
    /// Packets processed per core (after warm-up).
    pub per_core_processed: Vec<u64>,
    /// L3 hit rate over the measured interval.
    pub cache_hit_rate: f64,
    /// Delivered packets per tenant over time (1 s windows).
    pub tenant_delivered: HashMap<u32, RateMeter>,
    /// End-to-end latency per tenant VNI — populated only when
    /// [`SimConfig::track_tenant_latency`] is set (empty otherwise).
    pub tenant_latency: HashMap<u32, LatencyHistogram>,
    /// Bytes moved NIC→CPU over PCIe (whole run — the header-only savings
    /// metric of appendix A).
    pub pcie_rx_bytes: u64,
    /// Bytes moved CPU→NIC over PCIe (whole run).
    pub pcie_tx_bytes: u64,
    /// Header-only packets whose payload was reaped before their late
    /// return (headers dropped at the legal check).
    pub headers_dropped: u64,
    /// Payloads force-released by the timeout reaper.
    pub payloads_reaped: u64,
    /// Heavy hitters promoted into pre_check/pre_meter (after warm-up).
    pub hh_promotions: u64,
    /// Heavy hitters demoted (conforming-window expiry + explicit
    /// uninstalls; after warm-up).
    pub hh_demotions: u64,
    /// Promotees evicted under pre_meter slot pressure (after warm-up).
    pub hh_evictions: u64,
    /// Promotions refused with every slot taken (after warm-up) — non-zero
    /// only with eviction disabled: the limiter's degraded mode.
    pub hh_promotion_refused: u64,
    /// Occupied pre_meter slots sampled once per `sample_window` (whole
    /// run; empty when no rate limiter is configured).
    pub hh_slot_occupancy: TimeSeries,
    /// Packets whose session state the FPGA tier served (after warm-up;
    /// all `tier_*` counters are zero without
    /// [`SimConfig::session_tiers`]).
    pub tier_fpga_pkts: u64,
    /// Packets the DPU tier served (after warm-up).
    pub tier_dpu_pkts: u64,
    /// Packets whose session write stayed on the CPU (after warm-up).
    pub tier_cpu_pkts: u64,
    /// CPU→hardware promotions (after warm-up).
    pub tier_promotions: u64,
    /// DPU→FPGA upgrades (after warm-up).
    pub tier_upgrades: u64,
    /// Hardware residents demoted back to the CPU (after warm-up).
    pub tier_demotions: u64,
    /// Hardware residents evicted under slot pressure (after warm-up).
    pub tier_evictions: u64,
    /// Hardware residents reclaimed by idle expiry (after warm-up).
    pub tier_expired: u64,
    /// Promotions deferred for lack of install-budget tokens (after
    /// warm-up) — the XenoFlow insertion-rate bottleneck made visible.
    pub tier_installs_deferred: u64,
    /// Packets served by a hardware-resident flow-state entry (after
    /// warm-up; all `flow_*` counters are zero without
    /// [`SimConfig::flow_state`]).
    pub flow_hits: u64,
    /// New flows installed into the hardware flow table (after warm-up).
    pub flow_installs: u64,
    /// Packets pushed to the software slow path because the install
    /// budget was dry or the table full (after warm-up) — the CPS
    /// ceiling made visible.
    pub flow_deferred: u64,
    /// Flow-table entries reclaimed by idle expiry (after warm-up).
    pub flow_expired: u64,
}

impl SimReport {
    /// Merges per-pod reports — in the given, fixed order — into one
    /// server-level aggregate (e.g. the co-resident GW pods of one
    /// Albatross server, or the shards of a fleet sweep).
    ///
    /// The merge is the fleet's determinism anchor (DESIGN.md §4d): every
    /// rule depends only on the *input order*, never on thread scheduling —
    /// counters sum, histograms merge bucket-wise, per-core vectors
    /// concatenate in order, time series interleave via the stable
    /// [`TimeSeries::merge_ordered`] rule, tenant meters sum per-window
    /// (integer counts, so grouping-independent), and the float
    /// reductions (`cache_hit_rate` weighting) fold strictly left-to-right.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn merge_ordered(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "nothing to merge");
        let mut out = SimReport {
            measured_secs: 0.0,
            offered: 0,
            processed: 0,
            transmitted: 0,
            in_order: 0,
            out_of_order: 0,
            dropped_ratelimit: 0,
            dropped_ingress_full: 0,
            dropped_rx_queue: 0,
            dropped_acl: 0,
            hol_timeouts: 0,
            drop_flag_releases: 0,
            latency: LatencyHistogram::new(),
            core_util: CoreUtilization::new(reports[0].core_util.cores()),
            per_core_processed: Vec::new(),
            cache_hit_rate: 0.0,
            tenant_delivered: HashMap::new(),
            tenant_latency: HashMap::new(),
            pcie_rx_bytes: 0,
            pcie_tx_bytes: 0,
            headers_dropped: 0,
            payloads_reaped: 0,
            hh_promotions: 0,
            hh_demotions: 0,
            hh_evictions: 0,
            hh_promotion_refused: 0,
            hh_slot_occupancy: TimeSeries::new(),
            tier_fpga_pkts: 0,
            tier_dpu_pkts: 0,
            tier_cpu_pkts: 0,
            tier_promotions: 0,
            tier_upgrades: 0,
            tier_demotions: 0,
            tier_evictions: 0,
            tier_expired: 0,
            tier_installs_deferred: 0,
            flow_hits: 0,
            flow_installs: 0,
            flow_deferred: 0,
            flow_expired: 0,
        };
        // Seed core_util from the first report (CoreUtilization has no
        // empty state), then absorb the rest.
        out.core_util = reports[0].core_util.clone();
        let mut hit_weight = 0.0f64;
        for (i, r) in reports.iter().enumerate() {
            out.measured_secs = out.measured_secs.max(r.measured_secs);
            out.offered += r.offered;
            out.processed += r.processed;
            out.transmitted += r.transmitted;
            out.in_order += r.in_order;
            out.out_of_order += r.out_of_order;
            out.dropped_ratelimit += r.dropped_ratelimit;
            out.dropped_ingress_full += r.dropped_ingress_full;
            out.dropped_rx_queue += r.dropped_rx_queue;
            out.dropped_acl += r.dropped_acl;
            out.hol_timeouts += r.hol_timeouts;
            out.drop_flag_releases += r.drop_flag_releases;
            out.latency.merge(&r.latency);
            if i > 0 {
                out.core_util.merge_pods(&r.core_util);
            }
            out.per_core_processed
                .extend_from_slice(&r.per_core_processed);
            // Processed-packet-weighted hit rate, folded left-to-right.
            let w = r.processed as f64;
            out.cache_hit_rate += r.cache_hit_rate * w;
            hit_weight += w;
            // HashMap iteration order is nondeterministic; per-VNI merges
            // are integer sums (grouping-independent), but iterate sorted
            // anyway so even float-sensitive future fields stay safe.
            let mut vnis: Vec<_> = r.tenant_delivered.keys().copied().collect();
            vnis.sort_unstable();
            for vni in vnis {
                let meter = &r.tenant_delivered[&vni];
                out.tenant_delivered
                    .entry(vni)
                    .and_modify(|m| m.merge(meter))
                    .or_insert_with(|| meter.clone());
            }
            // Per-VNI latency merges are bucket-count sums, so they are
            // grouping-independent too; sorted iteration for the same
            // belt-and-braces reason as the meters.
            let mut vnis: Vec<_> = r.tenant_latency.keys().copied().collect();
            vnis.sort_unstable();
            for vni in vnis {
                let hist = &r.tenant_latency[&vni];
                out.tenant_latency
                    .entry(vni)
                    .and_modify(|h| h.merge(hist))
                    .or_insert_with(|| hist.clone());
            }
            out.pcie_rx_bytes += r.pcie_rx_bytes;
            out.pcie_tx_bytes += r.pcie_tx_bytes;
            out.headers_dropped += r.headers_dropped;
            out.payloads_reaped += r.payloads_reaped;
            out.hh_promotions += r.hh_promotions;
            out.hh_demotions += r.hh_demotions;
            out.hh_evictions += r.hh_evictions;
            out.hh_promotion_refused += r.hh_promotion_refused;
            out.hh_slot_occupancy.merge_ordered(&r.hh_slot_occupancy);
            out.tier_fpga_pkts += r.tier_fpga_pkts;
            out.tier_dpu_pkts += r.tier_dpu_pkts;
            out.tier_cpu_pkts += r.tier_cpu_pkts;
            out.tier_promotions += r.tier_promotions;
            out.tier_upgrades += r.tier_upgrades;
            out.tier_demotions += r.tier_demotions;
            out.tier_evictions += r.tier_evictions;
            out.tier_expired += r.tier_expired;
            out.tier_installs_deferred += r.tier_installs_deferred;
            out.flow_hits += r.flow_hits;
            out.flow_installs += r.flow_installs;
            out.flow_deferred += r.flow_deferred;
            out.flow_expired += r.flow_expired;
        }
        if hit_weight > 0.0 {
            out.cache_hit_rate /= hit_weight;
        }
        out
    }

    /// Aggregate forwarding throughput in packets/second.
    pub fn throughput_pps(&self) -> f64 {
        self.processed as f64 / self.measured_secs
    }

    /// Per-core throughput in packets/second.
    pub fn per_core_pps(&self) -> f64 {
        self.throughput_pps() / self.per_core_processed.len() as f64
    }

    /// Fraction of transmitted packets that left out of order (Fig. 11's
    /// "disordering rate").
    pub fn disorder_rate(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.out_of_order as f64 / self.transmitted as f64
        }
    }

    /// Fraction of session-engine packets served in hardware (FPGA + DPU)
    /// during the measured interval. Zero when no tiered engine ran.
    pub fn tier_offload_hit_rate(&self) -> f64 {
        let total = self.tier_fpga_pkts + self.tier_dpu_pkts + self.tier_cpu_pkts;
        if total == 0 {
            0.0
        } else {
            (self.tier_fpga_pkts + self.tier_dpu_pkts) as f64 / total as f64
        }
    }

    /// Fraction of flow-state packets that hit a hardware-resident entry
    /// during the measured interval. Zero when no flow-state engine ran.
    pub fn flow_hit_rate(&self) -> f64 {
        let total = self.flow_hits + self.flow_installs + self.flow_deferred;
        if total == 0 {
            0.0
        } else {
            self.flow_hits as f64 / total as f64
        }
    }
}

enum Ev {
    /// Next packet from the source arrives at the NIC port.
    Arrival(PacketDesc),
    /// DMA delivered a packet descriptor into a core's RX queue.
    Deliver { core: usize, pkt: NicPacket },
    /// A core finished its current packet (core becomes free).
    CoreDone { core: usize },
    /// A processed packet reaches the NIC's TX path. Separate from
    /// `CoreDone` because software-stack jitter (driver batching, deferred
    /// TX) delays the packet without occupying the data core.
    CpuReturn {
        pkt: NicPacket,
        action: PacketAction,
    },
    /// Timeout-driven reorder check.
    ReorderPoll,
    /// Periodic core-utilization sample.
    Sample,
    /// Statistics reset after cache warm-up.
    WarmupReset,
}

/// The assembled simulation.
pub struct PodSimulation {
    cfg: SimConfig,
    engine: Engine<Ev>,
    lb: PlbEngine,
    limiter: Option<TwoStageRateLimiter>,
    cores: Vec<DataCore>,
    in_flight: Vec<Option<(NicPacket, PacketAction, u64)>>,
    service: ServicePipeline,
    /// Three-tier session placement engine (FPGA/DPU/CPU); `None` keeps the
    /// classic all-CPU session path byte-for-byte unchanged.
    tiers: Option<TieredSessionEngine>,
    /// Hardware flow-state install frontier; `None` (or a configured
    /// `tiers` engine, which takes precedence) keeps the classic session
    /// path byte-for-byte unchanged.
    flow_state: Option<FlowStateEngine>,
    /// Software-stack delay applied between core completion and the NIC TX
    /// path (does not occupy the core).
    stack_jitter: Option<LatencyModel>,
    tables: CloudGatewayTables,
    mem: MemorySystem,
    nb: NumaBalancing,
    rng: SimRng,
    nic_latency: NicPipelineLatency,
    dma: DmaEngine,
    payload_buffer: PayloadBuffer,
    /// `(ordq, psn)` → packet id for in-flight header-only packets, so
    /// reorder timeouts can reap the retained payload.
    split_index: HashMap<(u8, u32), u64>,
    next_pkt_id: u64,
    // measurement
    offered: u64,
    dropped_ratelimit: u64,
    dropped_acl: u64,
    transmitted: u64,
    in_order: u64,
    out_of_order: u64,
    latency: LatencyHistogram,
    core_util: CoreUtilization,
    tenant_delivered: HashMap<u32, RateMeter>,
    tenant_latency: HashMap<u32, LatencyHistogram>,
    hh_slot_occupancy: TimeSeries,
    poll_at: Option<SimTime>,
    // burst-datapath scratch (preallocated; reused every cycle so steady
    // state never allocates)
    egress_buf: EgressBuf,
    timeout_buf: Vec<(usize, u32)>,
    util_buf: Vec<f64>,
    // warm-up snapshots
    warm_processed_base: Vec<u64>,
    warm_counters: WarmBase,
}

#[derive(Debug, Default, Clone)]
struct WarmBase {
    offered: u64,
    dropped_ratelimit: u64,
    dropped_acl: u64,
    transmitted: u64,
    in_order: u64,
    out_of_order: u64,
    hol: u64,
    drop_flag: u64,
    ingress_full: u64,
    rx_drops: u64,
    hh_promotions: u64,
    hh_demotions: u64,
    hh_evictions: u64,
    hh_promotion_refused: u64,
    tiers: TierStats,
    flow_hits: u64,
    flow_installs: u64,
    flow_deferred: u64,
    flow_expired: u64,
}

impl PodSimulation {
    /// Builds the simulation from `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        let tables = CloudGatewayTables::scaled(cfg.table_scale);
        let mut service = ServicePipeline::new(cfg.service, &tables);
        if let Some(m) = cfg.acl_drop_modulus {
            service = service.with_acl_drop_modulus(m);
        }
        let topo = NumaTopology::albatross_server();
        // Pre-size per-core cache stats: every data core touches the L3 on
        // its first packet, and growing the stat vectors there would be a
        // steady-state allocation (tests/alloc_steady_state.rs).
        let mem = MemorySystem::new(
            SharedCache::with_cores(cfg.cache_bytes, cfg.cache_ways, cfg.data_cores),
            DramModel::new(cfg.mem_freq_mhz),
        )
        .with_placement(&topo, cfg.placement);
        let lb = PlbEngine::new(PlbEngineConfig {
            data_cores: cfg.data_cores,
            ordqs: cfg.ordqs,
            reorder: ReorderConfig {
                depth: cfg.reorder_depth,
                timeout_ns: cfg.reorder_timeout_ns,
            },
            mode: cfg.mode,
            auto_fallback_hol_timeouts: None,
        });
        Self {
            engine: Engine::new(),
            lb,
            limiter: cfg.rate_limiter.clone().map(TwoStageRateLimiter::new),
            cores: (0..cfg.data_cores)
                .map(|i| DataCore::new(i, cfg.rx_queue_depth))
                .collect(),
            in_flight: (0..cfg.data_cores).map(|_| None).collect(),
            service,
            tiers: cfg.session_tiers.clone().map(TieredSessionEngine::new),
            flow_state: cfg.flow_state.as_ref().map(FlowStateEngine::new),
            stack_jitter: cfg.extra_jitter.clone(),
            tables,
            mem,
            nb: NumaBalancing::new(cfg.data_cores, cfg.numa_balancing),
            rng: SimRng::seed_from(cfg.seed),
            nic_latency: NicPipelineLatency::production(),
            dma: DmaEngine::production(),
            payload_buffer: PayloadBuffer::new(cfg.payload_buffer_bytes),
            split_index: HashMap::new(),
            next_pkt_id: 0,
            offered: 0,
            dropped_ratelimit: 0,
            dropped_acl: 0,
            transmitted: 0,
            in_order: 0,
            out_of_order: 0,
            latency: LatencyHistogram::new(),
            core_util: CoreUtilization::new(cfg.data_cores),
            tenant_delivered: HashMap::new(),
            tenant_latency: HashMap::new(),
            hh_slot_occupancy: TimeSeries::new(),
            poll_at: None,
            egress_buf: EgressBuf::with_capacity(cfg.burst.burst_size.max(1)),
            timeout_buf: Vec::with_capacity(cfg.burst.burst_size.max(1)),
            util_buf: Vec::with_capacity(cfg.data_cores),
            warm_processed_base: vec![0; cfg.data_cores],
            warm_counters: WarmBase::default(),
            cfg,
        }
    }

    /// Direct access to the rate limiter (to pre-configure bypass tenants).
    pub fn limiter_mut(&mut self) -> Option<&mut TwoStageRateLimiter> {
        self.limiter.as_mut()
    }

    /// CPU-assisted demotion from the pod layer: removes `vni` from the
    /// limiter's promoted set and reclaims its pre_meter slot. Returns
    /// `false` when no limiter is configured or `vni` is not promoted.
    pub fn uninstall_heavy_hitter(&mut self, vni: u32) -> bool {
        self.limiter
            .as_mut()
            .is_some_and(|l| l.uninstall_heavy_hitter(vni))
    }

    /// Runs `source` until `duration` of virtual time has elapsed, then
    /// returns the report for the post-warm-up interval.
    pub fn run(mut self, source: &mut dyn TrafficSource, duration: SimTime) -> SimReport {
        self.start(source, duration);
        self.step_until(source, duration, duration);
        self.finish(duration)
    }

    /// Schedules the preamble events (first arrival, warm-up reset, first
    /// utilization sample). Split out of [`run`](Self::run) so the sharded
    /// driver can interleave several pods epoch by epoch.
    fn start(&mut self, source: &mut dyn TrafficSource, _duration: SimTime) {
        if let Some(first) = source.next_packet() {
            self.engine.schedule(first.time, Ev::Arrival(first));
        }
        if self.cfg.warmup > SimTime::ZERO {
            self.engine.schedule(self.cfg.warmup, Ev::WarmupReset);
        }
        self.engine.schedule(self.cfg.sample_window, Ev::Sample);
    }

    /// Timestamp of the next pending event, if any — the quote the lockstep
    /// layer uses to pick epoch starts.
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.engine.peek_time()
    }

    /// Executes every event with `time <= min(deadline, duration)`. The
    /// whole-run case (`deadline == duration`) is the classic loop;
    /// the sharded driver calls this once per lockstep epoch with the
    /// epoch deadline. Slicing is *ordering-exact*: an arrival beyond the
    /// epoch cap is scheduled instead of inlined (exactly the scalar
    /// fallback the batching guard already has), which preserves the event
    /// handling order — and therefore every byte of the report — for any
    /// slicing of `[0, duration]` into deadlines.
    fn step_until(&mut self, source: &mut dyn TrafficSource, duration: SimTime, deadline: SimTime) {
        let burst_size = self.cfg.burst.burst_size.max(1);
        let cap = deadline.min(duration);
        while let Some((now, ev)) = self.engine.pop_until(cap) {
            match ev {
                Ev::Arrival(desc) => {
                    self.on_arrival(desc, now);
                    // Inline-arrival batching: at most one Arrival is ever
                    // in the heap, so after serving it the next source
                    // packets can be admitted directly — skipping the
                    // schedule/pop round-trip — as long as each is strictly
                    // earlier than every pending event (on a time tie the
                    // already-scheduled event pops first in the scalar
                    // loop, so inlining would reorder). Up to `burst_size`
                    // packets per batch; the first that cannot be inlined
                    // is scheduled exactly as before.
                    let mut batched = 1;
                    while let Some(next) = source.next_packet() {
                        if next.time > duration {
                            // Horizon reached: the scalar loop drops this
                            // packet and stops pulling.
                            break;
                        }
                        let inline_ok = batched < burst_size
                            && next.time <= cap
                            && match self.engine.peek_time() {
                                None => true,
                                Some(head) => next.time < head,
                            };
                        if inline_ok {
                            self.on_arrival(next, next.time);
                            batched += 1;
                        } else {
                            self.engine.schedule(next.time, Ev::Arrival(next));
                            break;
                        }
                    }
                }
                Ev::Deliver { core, pkt } => {
                    self.cores[core].enqueue(pkt);
                    self.maybe_start_core(core, now);
                }
                Ev::CoreDone { core } => {
                    let (pkt, action, extra_ns) = self.in_flight[core]
                        .take()
                        .expect("CoreDone without in-flight packet");
                    // Zero-jitter returns reach the TX path at `now`; if no
                    // pending event precedes them the scalar loop would pop
                    // the CpuReturn immediately after this handler, so the
                    // burst loop calls it directly. (`maybe_start_core`
                    // only schedules strictly-later CoreDones, so checking
                    // the heap first is exact.)
                    let inline_return = burst_size > 1
                        && extra_ns == 0
                        && match self.engine.peek_time() {
                            None => true,
                            Some(head) => head > now,
                        };
                    if inline_return {
                        self.maybe_start_core(core, now);
                        self.on_cpu_return(pkt, action, now);
                    } else {
                        self.engine
                            .schedule(now + extra_ns, Ev::CpuReturn { pkt, action });
                        self.maybe_start_core(core, now);
                    }
                }
                Ev::CpuReturn { pkt, action } => {
                    self.on_cpu_return(pkt, action, now);
                }
                Ev::ReorderPoll => {
                    self.poll_at = None;
                    self.poll_and_record(now);
                    self.reap_timed_out_payloads();
                    self.schedule_poll(now);
                }
                Ev::Sample => {
                    // Idle-session expiry shares the sampling cadence: the
                    // tick is part of the event order, so expiry timing is
                    // identical across shard geometries.
                    if let Some(t) = self.tiers.as_mut() {
                        t.expire(now);
                    }
                    if let Some(fs) = self.flow_state.as_mut() {
                        fs.expire(now);
                    }
                    let window = self.cfg.sample_window.as_nanos();
                    let mut utils = std::mem::take(&mut self.util_buf);
                    utils.clear();
                    utils.extend(self.cores.iter_mut().map(|c| c.sample_utilization(window)));
                    self.core_util.sample(now.as_nanos(), &utils);
                    self.util_buf = utils;
                    if let Some(l) = self.limiter.as_ref() {
                        self.hh_slot_occupancy
                            .push(now.as_nanos(), l.promoted_count() as f64);
                    }
                    if now + window <= duration {
                        self.engine.schedule(now + window, Ev::Sample);
                    }
                }
                Ev::WarmupReset => self.warm_reset(),
            }
        }
    }

    /// Final reorder drain at the horizon and report construction.
    fn finish(mut self, duration: SimTime) -> SimReport {
        self.poll_and_record(duration);
        self.build_report(duration)
    }

    fn on_arrival(&mut self, desc: PacketDesc, now: SimTime) {
        self.offered += 1;
        // Gateway overload protection runs first, inside the NIC.
        if let (Some(limiter), Some(vni)) = (self.limiter.as_mut(), desc.vni) {
            if !limiter.process(vni, now, &mut self.rng).passed() {
                self.dropped_ratelimit += 1;
                return;
            }
        }
        let id = self.next_pkt_id;
        self.next_pkt_id += 1;
        let mut pkt = NicPacket::data(id, desc.tuple, desc.vni, desc.len_bytes, now);
        if self.cfg.delivery == DeliveryMode::HeaderOnly {
            // Appendix A: split the payload into the NIC buffer; fall back
            // to full delivery when the buffer is out of space.
            pkt.delivery = DeliveryMode::HeaderOnly;
            if !self.payload_buffer.store(id, pkt.retained_payload_bytes()) {
                pkt.delivery = DeliveryMode::FullPacket;
            }
        }
        // Dispatch decision happens after the pre-DMA RX stages; the DMA
        // stage's latency depends on how many bytes cross PCIe.
        let pre_dma_ns = self.nic_latency.total_ns(Direction::Rx) - 3_170;
        let dispatch_at = now + pre_dma_ns;
        match self.lb.ingress(&mut pkt, dispatch_at) {
            IngressDecision::Dropped => {
                self.payload_buffer.reap(id);
                self.schedule_poll(now);
            }
            IngressDecision::ToCore(core) => {
                if let Some(meta) = pkt.meta {
                    if pkt.delivery == DeliveryMode::HeaderOnly {
                        self.split_index.insert((meta.ordq, meta.psn), id);
                    }
                }
                let dma_ns = self.dma.transfer_rx(&pkt);
                self.engine
                    .schedule(now + pre_dma_ns + dma_ns, Ev::Deliver { core, pkt });
                self.schedule_poll(now);
            }
        }
    }

    fn maybe_start_core(&mut self, core: usize, now: SimTime) {
        if !self.cores[core].idle_at(now) || self.in_flight[core].is_some() {
            return;
        }
        let Some(pkt) = self.cores[core].take_next() else {
            return;
        };
        let flow_hash = pkt.tuple.compact_hash();
        let (outcome, tier_ns) = match self.tiers.as_mut() {
            Some(t) => {
                // Placement decision per packet: hardware-resident flows skip
                // the session-table step and pay the serving tier's cost
                // instead (DPU detour rides the non-core-occupying TX delay,
                // like stack jitter).
                let tier = t.on_packet(&pkt.tuple, pkt.len_bytes, now);
                let mut o = self.service.process_offloaded(
                    core,
                    flow_hash,
                    tier != SessionTier::Cpu,
                    &self.tables,
                    &mut self.mem,
                    &mut self.rng,
                );
                o.latency_ns += t.cpu_cost_ns(tier);
                (o, t.added_latency_ns(tier))
            }
            None => match self.flow_state.as_mut() {
                Some(fs) => {
                    // Flow-state frontier: residents skip the session step;
                    // installs and slow-path packets pay their cost on the
                    // core (the install doorbell and the software fallback
                    // both burn CPU — that is exactly the CPS ceiling).
                    let verdict = fs.on_packet(&pkt.tuple, now);
                    let mut o = self.service.process_offloaded(
                        core,
                        flow_hash,
                        verdict == FlowVerdict::Resident,
                        &self.tables,
                        &mut self.mem,
                        &mut self.rng,
                    );
                    o.latency_ns += fs.verdict_ns(verdict);
                    (o, 0)
                }
                None => (
                    self.service.process(
                        core,
                        flow_hash,
                        &self.tables,
                        &mut self.mem,
                        &mut self.rng,
                    ),
                    0,
                ),
            },
        };
        let stall = self
            .nb
            .stall_before(core, now, self.cfg.nominal_load, &mut self.rng);
        let extra_ns = tier_ns
            + self
                .stack_jitter
                .as_ref()
                .map_or(0, |m| m.sample(&mut self.rng));
        let done = self.cores[core].begin(now, outcome.latency_ns + stall);
        self.in_flight[core] = Some((pkt, outcome.action, extra_ns));
        self.engine.schedule(done, Ev::CoreDone { core });
    }

    fn on_cpu_return(&mut self, mut pkt: NicPacket, action: PacketAction, now: SimTime) {
        match action {
            PacketAction::Drop => {
                self.dropped_acl += 1;
                if let Some(meta) = pkt.meta.as_mut() {
                    if self.cfg.use_drop_flag {
                        // Return only the meta with the drop flag: the NIC
                        // frees the reorder slot immediately.
                        meta.set_drop();
                        let mut buf = std::mem::take(&mut self.egress_buf);
                        self.lb.cpu_return_into(pkt, true, now, &mut buf);
                        self.record_egresses(&mut buf, now);
                        self.egress_buf = buf;
                    }
                    // Without the flag the slot stays until head timeout.
                    self.schedule_poll(now);
                }
            }
            PacketAction::Forward => {
                let pre_ns = self.nic_latency.total_ns(Direction::Tx) - 2_980;
                let tx_total = pre_ns + self.dma.transfer_tx(&pkt);
                let payload_available = pkt.delivery == DeliveryMode::FullPacket
                    || self.payload_buffer.contains(pkt.id);
                let mut buf = std::mem::take(&mut self.egress_buf);
                self.lb
                    .cpu_return_into(pkt, payload_available, now + tx_total, &mut buf);
                self.record_egresses(&mut buf, now + tx_total);
                self.egress_buf = buf;
                self.schedule_poll(now);
            }
        }
        self.reap_timed_out_payloads();
    }

    /// Timeout-driven reorder drain into the reusable egress scratch.
    fn poll_and_record(&mut self, at: SimTime) {
        let mut buf = std::mem::take(&mut self.egress_buf);
        self.lb.poll_into(at, &mut buf);
        self.record_egresses(&mut buf, at);
        self.egress_buf = buf;
    }

    /// Releases NIC-retained payloads whose reorder info timed out — a
    /// late-returning header will then be dropped (§4.1 legal check).
    fn reap_timed_out_payloads(&mut self) {
        let mut buf = std::mem::take(&mut self.timeout_buf);
        self.lb.take_timeouts_into(&mut buf);
        for (ordq, psn) in buf.drain(..) {
            if let Some(id) = self.split_index.remove(&(ordq as u8, psn)) {
                self.payload_buffer.reap(id);
            }
        }
        self.timeout_buf = buf;
    }

    fn record_egresses(&mut self, egresses: &mut EgressBuf, at: SimTime) {
        for eg in egresses.drain() {
            let (pkt, ordered) = match eg {
                Egress::InOrder(p) => (p, true),
                Egress::OutOfOrder(p) => (p, false),
            };
            self.transmitted += 1;
            if ordered {
                self.in_order += 1;
            } else {
                self.out_of_order += 1;
            }
            if pkt.delivery == DeliveryMode::HeaderOnly {
                // Rejoin header and payload at the egress deparser.
                self.payload_buffer.take(pkt.id);
                if let Some(meta) = pkt.meta {
                    self.split_index.remove(&(meta.ordq, meta.psn));
                }
            }
            let latency_ns = at.saturating_since(pkt.arrival);
            self.latency.record(latency_ns);
            if let Some(vni) = pkt.vni {
                let window = self.cfg.tenant_rate_window.as_nanos();
                self.tenant_delivered
                    .entry(vni)
                    .or_insert_with(|| RateMeter::new(window))
                    .record(at.as_nanos(), 1);
                if self.cfg.track_tenant_latency {
                    self.tenant_latency
                        .entry(vni)
                        .or_default()
                        .record(latency_ns);
                }
            }
        }
    }

    fn schedule_poll(&mut self, now: SimTime) {
        let Some(deadline) = self.lb.next_timeout() else {
            return;
        };
        let at = deadline.max(now);
        match self.poll_at {
            Some(t) if t <= at => {}
            _ => {
                self.poll_at = Some(at);
                self.engine.schedule(at, Ev::ReorderPoll);
            }
        }
    }

    fn warm_reset(&mut self) {
        // Snapshot engine-side counters; reset local instruments.
        self.warm_counters = WarmBase {
            offered: self.offered,
            dropped_ratelimit: self.dropped_ratelimit,
            dropped_acl: self.dropped_acl,
            transmitted: self.transmitted,
            in_order: self.in_order,
            out_of_order: self.out_of_order,
            hol: self.lb.total_hol_timeouts(),
            drop_flag: self
                .lb
                .queue_stats()
                .iter()
                .map(|s| s.drop_flag_releases)
                .sum(),
            ingress_full: self.lb.total_ingress_drops(),
            rx_drops: self.cores.iter().map(DataCore::rx_drops).sum(),
            hh_promotions: self.limiter.as_ref().map_or(0, |l| l.promotions()),
            hh_demotions: self.limiter.as_ref().map_or(0, |l| l.demotions()),
            hh_evictions: self.limiter.as_ref().map_or(0, |l| l.evictions()),
            hh_promotion_refused: self.limiter.as_ref().map_or(0, |l| l.promotion_refused()),
            tiers: self.tiers.as_ref().map(|t| t.stats()).unwrap_or_default(),
            flow_hits: self.flow_state.as_ref().map_or(0, FlowStateEngine::hits),
            flow_installs: self
                .flow_state
                .as_ref()
                .map_or(0, FlowStateEngine::installs),
            flow_deferred: self
                .flow_state
                .as_ref()
                .map_or(0, FlowStateEngine::deferred),
            flow_expired: self.flow_state.as_ref().map_or(0, FlowStateEngine::expired),
        };
        self.warm_processed_base = self.cores.iter().map(DataCore::processed).collect();
        self.latency.reset();
        // Note: the cache is NOT reset — warm contents are the point. Only
        // statistics restart. (SharedCache::reset_stats preserves tags.)
        // We cannot borrow the cache mutably through MemorySystem's
        // accessor, so the hit rate is tracked from warm-up via a snapshot
        // subtraction below.
    }

    fn build_report(mut self, duration: SimTime) -> SimReport {
        let measured_ns = duration.saturating_since(self.cfg.warmup.min(duration));
        let per_core_processed: Vec<u64> = self
            .cores
            .iter()
            .zip(&self.warm_processed_base)
            .map(|(c, base)| c.processed() - base)
            .collect();
        let w = self.warm_counters.clone();
        let ts = self.tiers.as_ref().map(|t| t.stats()).unwrap_or_default();
        let drop_flag_total: u64 = self
            .lb
            .queue_stats()
            .iter()
            .map(|s| s.drop_flag_releases)
            .sum();
        let rx_drops: u64 = self.cores.iter().map(DataCore::rx_drops).sum();
        SimReport {
            measured_secs: measured_ns as f64 / 1e9,
            offered: self.offered - w.offered,
            processed: per_core_processed.iter().sum(),
            transmitted: self.transmitted - w.transmitted,
            in_order: self.in_order - w.in_order,
            out_of_order: self.out_of_order - w.out_of_order,
            dropped_ratelimit: self.dropped_ratelimit - w.dropped_ratelimit,
            dropped_ingress_full: self.lb.total_ingress_drops() - w.ingress_full,
            dropped_rx_queue: rx_drops - w.rx_drops,
            dropped_acl: self.dropped_acl - w.dropped_acl,
            hol_timeouts: self.lb.total_hol_timeouts() - w.hol,
            drop_flag_releases: drop_flag_total - w.drop_flag,
            latency: std::mem::take(&mut self.latency),
            core_util: self.core_util,
            per_core_processed,
            cache_hit_rate: self.mem.cache().hit_rate(),
            tenant_delivered: self.tenant_delivered,
            tenant_latency: self.tenant_latency,
            pcie_rx_bytes: self.dma.bytes_rx(),
            pcie_tx_bytes: self.dma.bytes_tx(),
            headers_dropped: self
                .lb
                .queue_stats()
                .iter()
                .map(|s| s.headers_dropped)
                .sum(),
            payloads_reaped: self.payload_buffer.released_by_reaper(),
            hh_promotions: self.limiter.as_ref().map_or(0, |l| l.promotions()) - w.hh_promotions,
            hh_demotions: self.limiter.as_ref().map_or(0, |l| l.demotions()) - w.hh_demotions,
            hh_evictions: self.limiter.as_ref().map_or(0, |l| l.evictions()) - w.hh_evictions,
            hh_promotion_refused: self.limiter.as_ref().map_or(0, |l| l.promotion_refused())
                - w.hh_promotion_refused,
            hh_slot_occupancy: self.hh_slot_occupancy,
            tier_fpga_pkts: ts.fpga_pkts - w.tiers.fpga_pkts,
            tier_dpu_pkts: ts.dpu_pkts - w.tiers.dpu_pkts,
            tier_cpu_pkts: ts.cpu_pkts - w.tiers.cpu_pkts,
            tier_promotions: ts.promotions - w.tiers.promotions,
            tier_upgrades: ts.upgrades - w.tiers.upgrades,
            tier_demotions: (ts.fpga_demotions + ts.dpu_demotions)
                - (w.tiers.fpga_demotions + w.tiers.dpu_demotions),
            tier_evictions: (ts.fpga_evictions + ts.dpu_evictions)
                - (w.tiers.fpga_evictions + w.tiers.dpu_evictions),
            tier_expired: (ts.fpga_expired + ts.dpu_expired)
                - (w.tiers.fpga_expired + w.tiers.dpu_expired),
            tier_installs_deferred: ts.installs_deferred() - w.tiers.installs_deferred(),
            flow_hits: self.flow_state.as_ref().map_or(0, FlowStateEngine::hits) - w.flow_hits,
            flow_installs: self
                .flow_state
                .as_ref()
                .map_or(0, FlowStateEngine::installs)
                - w.flow_installs,
            flow_deferred: self
                .flow_state
                .as_ref()
                .map_or(0, FlowStateEngine::deferred)
                - w.flow_deferred,
            flow_expired: self.flow_state.as_ref().map_or(0, FlowStateEngine::expired)
                - w.flow_expired,
        }
    }
}

impl Lookahead for Ev {
    /// No pod can affect another pod sooner than a packet can transit the
    /// NIC RX pipeline (wire + parser + DMA, 3.9 µs) — the natural
    /// conservative lookahead window for pod-granular sharding.
    fn lookahead_ns() -> u64 {
        NicPipelineLatency::production().total_ns(Direction::Rx)
    }
}

struct PodShard {
    sim: PodSimulation,
    source: Box<dyn TrafficSource + Send>,
    duration: SimTime,
}

/// One lockstep shard: a contiguous group of pods (pods-per-shard > 1 when
/// the run has more pods than shards).
struct PodGroup {
    pods: Vec<PodShard>,
}

impl EpochShard for PodGroup {
    type Event = Ev;

    fn next_time(&mut self) -> Option<SimTime> {
        // Events beyond a pod's horizon will never be popped (step_until
        // caps at `duration`), so they must not open epochs either or the
        // lockstep loop would spin forever.
        self.pods
            .iter_mut()
            .filter_map(|p| p.sim.next_event_time().filter(|t| *t <= p.duration))
            .min()
    }

    fn run_until(&mut self, deadline: SimTime) {
        for p in &mut self.pods {
            p.sim.step_until(p.source.as_mut(), p.duration, deadline);
        }
    }

    fn deliver(&mut self, msgs: Vec<ShardMsg<Ev>>) {
        // Pods are coupled through the pre-computed steering timeline, not
        // through runtime messages (yet) — nothing should arrive here.
        assert!(
            msgs.is_empty(),
            "pod shards do not exchange runtime messages"
        );
    }
}

/// Several pods executed as lockstep shards of **one** scenario.
///
/// This is the sharded driver of the coupled simulations: every pod keeps
/// its own [`PodSimulation`] (timing wheel included), pods are grouped into
/// `shards` contiguous groups, and the groups advance in conservative-
/// lookahead epochs on up to `threads` persistent workers (see
/// `albatross_sim::shard`). The reports come back in push order and are
/// byte-identical for every `shards × threads` combination — including
/// `1 × 1`, which is the plain serial loop.
pub struct ShardedPodSimulation {
    pods: Vec<PodShard>,
}

impl ShardedPodSimulation {
    /// Creates an empty run.
    pub fn new() -> Self {
        Self { pods: Vec::new() }
    }

    /// Adds a pod: built immediately (on the calling thread, so
    /// construction order is deterministic) and run until `duration`.
    pub fn push(
        &mut self,
        cfg: SimConfig,
        source: Box<dyn TrafficSource + Send>,
        duration: SimTime,
    ) {
        self.pods.push(PodShard {
            sim: PodSimulation::new(cfg),
            source,
            duration,
        });
    }

    /// Number of pods pushed so far.
    pub fn len(&self) -> usize {
        self.pods.len()
    }

    /// True when no pods were pushed.
    pub fn is_empty(&self) -> bool {
        self.pods.is_empty()
    }

    /// Runs every pod to its horizon over `shards` lockstep shards and up
    /// to `threads` worker threads, returning the per-pod reports in push
    /// order. Both knobs are clamped to the pod count; neither changes a
    /// byte of any report.
    pub fn run(self, shards: usize, threads: usize) -> Vec<SimReport> {
        let n = self.pods.len();
        if n == 0 {
            return Vec::new();
        }
        let shards = shards.clamp(1, n);
        let mut pods = self.pods;
        for p in &mut pods {
            p.sim.start(p.source.as_mut(), p.duration);
        }
        // Contiguous grouping: pods [g·chunk, (g+1)·chunk) form shard g.
        // Grouping affects wall clock only — reports are grouped back in
        // push order below and each pod's event sequence is private.
        let chunk = n.div_ceil(shards);
        let mut groups: Vec<PodGroup> = Vec::with_capacity(shards);
        let mut iter = pods.into_iter();
        for _ in 0..shards {
            let group: Vec<PodShard> = iter.by_ref().take(chunk).collect();
            if !group.is_empty() {
                groups.push(PodGroup { pods: group });
            }
        }
        LockstepRunner::new(Ev::lookahead_ns(), threads).run(&mut groups);
        groups
            .into_iter()
            .flat_map(|g| g.pods)
            .map(|p| p.sim.finish(p.duration))
            .collect()
    }
}

impl Default for ShardedPodSimulation {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use albatross_workload::{ConstantRateSource, FlowSet};

    fn small_cfg(mode: LbMode, cores: usize) -> SimConfig {
        let mut cfg = SimConfig::new(cores, ServiceKind::VpcVpc);
        cfg.mode = mode;
        cfg.table_scale = 0.001;
        cfg.cache_bytes = 4 * 1024 * 1024;
        cfg.ordqs = 2;
        cfg.reorder_depth = 1024;
        cfg
    }

    fn run_simple(mode: LbMode, pps: u64) -> SimReport {
        let flows = FlowSet::generate(100, Some(7), 3);
        let mut src =
            ConstantRateSource::new(flows, pps, 256, SimTime::ZERO, SimTime::from_millis(50));
        PodSimulation::new(small_cfg(mode, 4)).run(&mut src, SimTime::from_millis(60))
    }

    #[test]
    fn plb_underload_delivers_everything_in_order() {
        // 100 kpps on 4 cores (capacity ≫ offered): no drops, no HOL, all
        // in order.
        let r = run_simple(LbMode::Plb, 100_000);
        assert_eq!(r.offered, 5_000);
        assert_eq!(r.processed, 5_000);
        assert_eq!(r.transmitted, 5_000);
        assert_eq!(r.in_order, 5_000);
        assert_eq!(r.out_of_order, 0);
        assert_eq!(r.hol_timeouts, 0);
        assert_eq!(r.dropped_rx_queue + r.dropped_ingress_full, 0);
    }

    #[test]
    fn rss_underload_also_delivers_everything() {
        let r = run_simple(LbMode::Rss, 100_000);
        assert_eq!(r.transmitted, 5_000);
        assert_eq!(r.disorder_rate(), 0.0);
    }

    #[test]
    fn latency_includes_nic_pipeline_floor() {
        // RX (3.9 µs) + processing + TX (4.17 µs): min latency > 8 µs.
        let r = run_simple(LbMode::Plb, 10_000);
        assert!(
            r.latency.min() >= 8_000,
            "min latency {} below NIC floor",
            r.latency.min()
        );
        // And the mean stays in the tens of microseconds (paper: ~20 µs).
        assert!(r.latency.mean() < 100_000.0);
    }

    #[test]
    fn overload_saturates_at_core_capacity() {
        // Offer far beyond capacity: processed ≈ capacity < offered, drops
        // appear somewhere.
        let r = run_simple(LbMode::Plb, 20_000_000);
        assert!(r.processed < r.offered);
        assert!(
            r.dropped_rx_queue + r.dropped_ingress_full > 0,
            "overload must drop"
        );
        // Well below the offered 20 Mpps: the cores are the bottleneck.
        assert!(
            (r.processed as f64) < 0.95 * r.offered as f64,
            "processed {} vs offered {}",
            r.processed,
            r.offered
        );
    }

    #[test]
    fn acl_drops_with_flag_do_not_hol() {
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.acl_drop_modulus = Some(4);
        cfg.use_drop_flag = true;
        let flows = FlowSet::generate(64, Some(7), 5);
        let mut src =
            ConstantRateSource::new(flows, 100_000, 256, SimTime::ZERO, SimTime::from_millis(20));
        let r = PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(30));
        assert!(r.dropped_acl > 0);
        assert!(r.drop_flag_releases > 0);
        assert_eq!(r.hol_timeouts, 0, "drop flag prevents HOL");
        assert_eq!(r.out_of_order, 0);
    }

    #[test]
    fn acl_drops_without_flag_cause_hol_timeouts() {
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.acl_drop_modulus = Some(4);
        cfg.use_drop_flag = false;
        let flows = FlowSet::generate(64, Some(7), 5);
        let mut src =
            ConstantRateSource::new(flows, 100_000, 256, SimTime::ZERO, SimTime::from_millis(20));
        let r = PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(30));
        assert!(r.dropped_acl > 0);
        assert!(r.hol_timeouts > 0, "silent drops must strand FIFO heads");
    }

    #[test]
    fn rate_limiter_caps_a_flooding_tenant() {
        let mut cfg = small_cfg(LbMode::Plb, 4);
        cfg.rate_limiter = Some(RateLimiterConfig {
            stage1_pps: 40_000.0,
            stage2_pps: 10_000.0,
            tenant_limit_pps: 50_000.0,
            ..RateLimiterConfig::production()
        });
        let flows = FlowSet::generate(10, Some(9), 6);
        let mut src = ConstantRateSource::new(
            flows,
            500_000, // 10× the 50k allowance
            256,
            SimTime::ZERO,
            SimTime::from_millis(100),
        );
        let r = PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(110));
        assert!(r.dropped_ratelimit > 0);
        let delivered_rate = r.transmitted as f64 / 0.1;
        assert!(
            delivered_rate < 80_000.0,
            "tenant must be capped near 50 kpps, got {delivered_rate}"
        );
    }

    #[test]
    fn heavy_hitter_lifecycle_counters_reach_the_report() {
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.rate_limiter = Some(RateLimiterConfig {
            stage1_pps: 40_000.0,
            stage2_pps: 10_000.0,
            tenant_limit_pps: 50_000.0,
            ..RateLimiterConfig::production()
        });
        let mut sim = PodSimulation::new(cfg);
        // Pod-layer control surface: install, then CPU-assisted uninstall.
        assert!(sim
            .limiter_mut()
            .unwrap()
            .install_heavy_hitter(9, SimTime::ZERO));
        assert!(sim.uninstall_heavy_hitter(9));
        assert!(!sim.uninstall_heavy_hitter(9), "already demoted");
        // The tenant floods anyway and gets re-promoted by sampling.
        let flows = FlowSet::generate(10, Some(9), 6);
        let mut src =
            ConstantRateSource::new(flows, 500_000, 256, SimTime::ZERO, SimTime::from_millis(50));
        let r = sim.run(&mut src, SimTime::from_millis(60));
        assert!(r.hh_promotions >= 2, "promotions {}", r.hh_promotions);
        assert_eq!(r.hh_demotions, 1);
        assert_eq!(r.hh_promotion_refused, 0);
        assert!(!r.hh_slot_occupancy.is_empty());
        assert!(r.hh_slot_occupancy.max() >= 1.0, "promotee must be sampled");
    }

    #[test]
    fn warmup_excludes_cold_cache_interval() {
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.warmup = SimTime::from_millis(25);
        let flows = FlowSet::generate(100, Some(7), 3);
        let mut src =
            ConstantRateSource::new(flows, 100_000, 256, SimTime::ZERO, SimTime::from_millis(50));
        let r = PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(50));
        // Only the second half is counted.
        assert!(r.offered <= 2_600, "offered={}", r.offered);
        assert!(r.offered >= 2_400);
    }

    #[test]
    fn per_tenant_rates_are_tracked() {
        let r = run_simple(LbMode::Plb, 100_000);
        let meter = r.tenant_delivered.get(&7).expect("tenant 7 tracked");
        assert_eq!(meter.total(), 5_000);
    }

    #[test]
    fn header_only_mode_saves_pcie_bytes_losslessly() {
        use albatross_fpga::pkt::DeliveryMode;
        let jumbo = 8_542u32;
        let run = |delivery| {
            let mut cfg = small_cfg(LbMode::Plb, 4);
            cfg.delivery = delivery;
            let flows = FlowSet::generate(100, Some(7), 3);
            let mut src = ConstantRateSource::new(
                flows,
                100_000,
                jumbo,
                SimTime::ZERO,
                SimTime::from_millis(40),
            );
            PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(50))
        };
        let full = run(DeliveryMode::FullPacket);
        let split = run(DeliveryMode::HeaderOnly);
        assert_eq!(full.transmitted, split.transmitted, "both lossless");
        assert_eq!(split.headers_dropped, 0);
        assert_eq!(split.payloads_reaped, 0);
        // Header-only moves ~64 B instead of 8,542 B per packet+direction.
        assert!(
            split.pcie_rx_bytes * 50 < full.pcie_rx_bytes,
            "split {} vs full {}",
            split.pcie_rx_bytes,
            full.pcie_rx_bytes
        );
    }

    #[test]
    fn header_only_timeout_reaps_payload_and_drops_late_header() {
        use albatross_fpga::pkt::DeliveryMode;
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.delivery = DeliveryMode::HeaderOnly;
        // Stack latency far past the 100 µs reorder timeout: every packet
        // times out, its payload is reaped, and its late header dropped.
        cfg.extra_jitter = Some(albatross_sim::LatencyModel::Fixed(300_000));
        let flows = FlowSet::generate(16, Some(7), 4);
        let mut src = ConstantRateSource::new(
            flows,
            50_000,
            4_000,
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        let r = PodSimulation::new(cfg).run(&mut src, SimTime::from_millis(20));
        assert!(r.hol_timeouts > 0);
        assert!(r.payloads_reaped > 0, "timeouts must reap payloads");
        assert!(r.headers_dropped > 0, "late headers must be dropped");
        assert_eq!(r.transmitted, 0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = run_simple(LbMode::Plb, 200_000);
        let b = run_simple(LbMode::Plb, 200_000);
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.latency.max(), b.latency.max());
        assert_eq!(a.in_order, b.in_order);
    }

    /// Canonical byte-level fingerprint of a report: every counter, every
    /// histogram bucket, and the float fields as exact bit patterns.
    fn fingerprint(r: &SimReport) -> String {
        let mut vnis: Vec<_> = r.tenant_delivered.keys().copied().collect();
        vnis.sort_unstable();
        let tenants: Vec<String> = vnis
            .iter()
            .map(|v| format!("{v}:{}", r.tenant_delivered[v].total()))
            .collect();
        format!(
            "{:016x}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:016x}|{:?}|{}|t{}:{}:{}:{}:{}:{}:{}:{}:{}",
            r.measured_secs.to_bits(),
            r.offered,
            r.processed,
            r.transmitted,
            r.in_order,
            r.out_of_order,
            r.dropped_rx_queue,
            r.dropped_ingress_full,
            r.hol_timeouts,
            r.latency.max(),
            r.cache_hit_rate.to_bits(),
            r.per_core_processed,
            tenants.join(","),
            r.tier_fpga_pkts,
            r.tier_dpu_pkts,
            r.tier_cpu_pkts,
            r.tier_promotions,
            r.tier_upgrades,
            r.tier_demotions,
            r.tier_evictions,
            r.tier_expired,
            r.tier_installs_deferred
        )
    }

    #[test]
    fn sharded_pods_match_plain_runs_at_any_geometry() {
        let pod = |seed: u64| {
            let mut cfg = small_cfg(LbMode::Plb, 2);
            cfg.seed = seed;
            let flows = FlowSet::generate(50, Some(seed as u32), seed ^ 0x5a5a);
            let src = ConstantRateSource::new(
                flows,
                150_000,
                256,
                SimTime::ZERO,
                SimTime::from_millis(8),
            );
            (cfg, src)
        };
        // Reference: each pod run alone through the classic loop.
        let duration = SimTime::from_millis(10);
        let reference: Vec<String> = (0..5u64)
            .map(|s| {
                let (cfg, mut src) = pod(s);
                fingerprint(&PodSimulation::new(cfg).run(&mut src, duration))
            })
            .collect();
        for (shards, threads) in [(1, 1), (3, 1), (5, 2), (5, 5), (8, 4)] {
            let mut sharded = ShardedPodSimulation::new();
            for s in 0..5u64 {
                let (cfg, src) = pod(s);
                sharded.push(cfg, Box::new(src), duration);
            }
            let reports = sharded.run(shards, threads);
            let got: Vec<String> = reports.iter().map(fingerprint).collect();
            assert_eq!(got, reference, "shards={shards} threads={threads}");
        }
    }

    fn tiered_cfg(seed: u64) -> SimConfig {
        use albatross_fpga::tier::InstallBudget;
        let mut cfg = small_cfg(LbMode::Plb, 2);
        cfg.service = ServiceKind::VpcInternet;
        cfg.seed = seed;
        // Tiny tables + tight budget so promotions, upgrades, demotions,
        // evictions, expiry, AND deferrals all occur within the run.
        cfg.session_tiers = Some(TierConfig {
            fpga_capacity: 6,
            dpu_capacity: 12,
            fpga_install_budget: Some(InstallBudget {
                installs_per_sec: 2_000.0,
                burst: 2.0,
            }),
            dpu_install_budget: Some(InstallBudget {
                installs_per_sec: 4_000.0,
                burst: 4.0,
            }),
            elephant_pkts_per_window: 4,
            window: SimTime::from_millis(1),
            demote_after_windows: Some(2),
            evict_on_pressure: true,
            candidate_slots: 16,
            idle_timeout: SimTime::from_millis(3),
            dpu_pkt_ns: 2_500,
            cpu_session_ns: 80,
        });
        cfg
    }

    #[test]
    fn tiered_session_engine_reports_placement_counters() {
        let flows = FlowSet::generate(60, Some(9), 11);
        let mut src =
            ConstantRateSource::new(flows, 200_000, 256, SimTime::ZERO, SimTime::from_millis(25));
        let r = PodSimulation::new(tiered_cfg(9)).run(&mut src, SimTime::from_millis(30));
        assert!(r.tier_promotions > 0, "elephants must be promoted");
        assert!(r.tier_fpga_pkts > 0, "FPGA tier must serve packets");
        assert!(r.tier_cpu_pkts > 0, "mice must stay on CPU");
        let hit = r.tier_offload_hit_rate();
        assert!(hit > 0.0 && hit < 1.0, "hit rate {hit} must be partial");
        assert_eq!(
            r.tier_fpga_pkts + r.tier_dpu_pkts + r.tier_cpu_pkts,
            r.processed,
            "every processed packet is attributed to exactly one tier"
        );
    }

    #[test]
    fn tiered_pods_are_byte_identical_across_shard_geometries() {
        let pod = |seed: u64| {
            let flows = FlowSet::generate(60, Some(seed as u32), seed ^ 0x33);
            let src = ConstantRateSource::new(
                flows,
                180_000,
                256,
                SimTime::ZERO,
                SimTime::from_millis(8),
            );
            (tiered_cfg(seed), src)
        };
        let duration = SimTime::from_millis(10);
        let reference: Vec<String> = (0..4u64)
            .map(|s| {
                let (cfg, mut src) = pod(s);
                fingerprint(&PodSimulation::new(cfg).run(&mut src, duration))
            })
            .collect();
        assert!(
            reference.iter().any(|f| !f.contains("|t0:0:0:")),
            "tier counters must be live in the reference runs"
        );
        for (shards, threads) in [(1, 1), (2, 2), (4, 4)] {
            let mut sharded = ShardedPodSimulation::new();
            for s in 0..4u64 {
                let (cfg, src) = pod(s);
                sharded.push(cfg, Box::new(src), duration);
            }
            let reports = sharded.run(shards, threads);
            let got: Vec<String> = reports.iter().map(fingerprint).collect();
            assert_eq!(got, reference, "shards={shards} threads={threads}");
        }
    }
}
