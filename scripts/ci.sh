#!/usr/bin/env bash
# Offline CI gate. Everything here must pass with NO network and NO
# crates-io registry: the workspace is hermetic by policy (DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> guard: no registry dependencies"
# Every [dependencies]/[dev-dependencies] entry in the workspace must be a
# path dependency. A `version = "..."` (or bare `foo = "1.2"`) line in any
# crate manifest means someone reintroduced a crates-io dep.
if grep -rn 'version\s*=' crates/*/Cargo.toml; then
    echo "ERROR: registry dependency found in a crate manifest" >&2
    exit 1
fi
# Same check for bare `foo = "1.2"` shorthand, scoped to dependency
# sections so [package] metadata (edition, rust-version) doesn't trip it.
if awk '
    /^\[/ { dep = ($0 ~ /dependencies\]$/) }
    dep && /^[ \t]*[A-Za-z0-9_-]+[ \t]*=[ \t]*"/ { print FILENAME ":" FNR ": " $0; bad = 1 }
    END { exit bad }
' Cargo.toml crates/*/Cargo.toml; then :; else
    echo "ERROR: bare-version registry dependency found" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (offline, all targets, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build (release, offline, all targets)"
cargo build --release --offline --workspace --benches

echo "==> cargo test (offline)"
cargo test -q --offline --release --workspace

echo "==> cargo doc (offline, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> heavy-hitter lifecycle churn smoke (examples/tenant_churn)"
# 1,000 rotating heavy hitters through 8 pre_meter slots over 100 simulated
# seconds, both determinism runs fanned out through the fleet runner; the
# example asserts promotion is never refused, innocents recover to >= 99%
# every phase, slots drain to zero, and the two same-seed runs produce
# identical reports.
cargo run --release --offline --example tenant_churn -- --threads 2

echo "==> fleet determinism gate (threads=1 vs threads=4)"
# The fleet's contract: thread count must never change a single output
# byte. Run the two-arm isolation demo serially and 4-wide and diff the
# canonical RESULT line (delivered totals per tenant, floats as raw bits).
serial=$(cargo run --release --offline --example multi_tenant_isolation -- --threads 1 | grep '^RESULT')
wide=$(cargo run --release --offline --example multi_tenant_isolation -- --threads 4 | grep '^RESULT')
if [ "$serial" != "$wide" ]; then
    echo "ERROR: fleet output depends on thread count" >&2
    echo "  threads=1: $serial" >&2
    echo "  threads=4: $wide" >&2
    exit 1
fi
echo "    fleet output byte-identical at threads=1 and threads=4"

echo "==> fault injection gate (examples/fault_injection)"
# The example is a gate, not a demo: its canonical RESULT lines (floats
# as raw bits) are pinned byte-for-byte by tests/fault_injection_gate.rs;
# here the binary itself must still run green and emit all three arms.
lines=$(cargo run --release --offline --example fault_injection | grep -c '^RESULT fault_injection')
if [ "$lines" != "3" ]; then
    echo "ERROR: fault_injection must emit exactly 3 RESULT lines, got $lines" >&2
    exit 1
fi

echo "==> AZ resilience drill gate (examples/az_resilience, 1x1 vs 4x4)"
# The coupled AZ simulation (shared switch control plane, per-server BGP
# proxies, per-pod BFD, five failure drills) must produce byte-identical
# canonical output at any shards x threads geometry (DESIGN.md §4g): the
# serial arm is the plain lockstep loop, the wide arm runs 4 shards over
# 4 worker threads. The example also asserts the headline drill contracts
# (crash convergence, loss-free migration, zero-route storm, per-window
# conservation) before printing.
az_serial=$(cargo run --release --offline --example az_resilience -- --threads 1 --shards 1 | grep '^RESULT')
az_wide=$(cargo run --release --offline --example az_resilience -- --threads 4 --shards 4 | grep '^RESULT')
if [ "$az_serial" != "$az_wide" ]; then
    echo "ERROR: AZ drill output depends on the shards x threads geometry" >&2
    diff <(printf '%s\n' "$az_serial") <(printf '%s\n' "$az_wide") >&2 || true
    exit 1
fi
echo "    AZ drill output byte-identical at 1x1 and 4x4 (shards x threads)"

echo "==> co-resident pod fleet smoke (examples/containerized_az)"
# Control-plane walk plus the two-NUMA pod fleet merged into one server
# report (exercises ScenarioFleet + SimReport::merge_ordered end to end).
cargo run --release --offline --example containerized_az -- --threads 2

echo "==> scalar-vs-burst datapath smoke bench"
# The burst refactor's perf claim, exercised on every CI run: the burst
# datapath must actually run (regressions in speedup are judged from the
# printed report, not gated here — CI machines are too noisy for a ratio).
cargo bench --offline -p albatross-bench --bench micro -- burst_datapath

echo "==> SoA hot-path smoke bench"
# Scalar vs burst (AoS) vs SoA lane-view hot path on the Tab. 3 shape.
# The run starts with an untimed exactness gate (SoA ≡ AoS burst on
# routes, NC lookups, verdicts, and the pass bitmask) that hard-fails on
# divergence; the >= 1.3x speedup is judged from the printed report.
cargo bench --offline -p albatross-bench --bench soa_hot_path -- soa_hot_path

echo "==> fleet + timing-wheel scaling smoke bench"
# Wheel-vs-heap events/sec and the 8-scenario fleet wall-clock ratio; the
# printed gates are judged from the report (single-core CI machines cannot
# show fleet speedup, and the bench says so explicitly).
cargo bench --offline -p albatross-bench --bench fleet_scaling -- fleet_scaling

echo "==> sharded-engine scaling smoke bench"
# One coupled 8-pod scenario over lockstep shards. The run opens with an
# untimed exactness gate (8x1 and 8xN must match 1x1 byte for byte) that
# hard-fails on divergence; the >= 2.5x speedup is judged from the printed
# report (single-core CI machines cannot show it, and the bench says so).
cargo bench --offline -p albatross-bench --bench shard_scaling -- shard_scaling

echo "==> co-offload tier sweep smoke bench + determinism gate"
# Zipf sweep of the dynamic FPGA/DPU/CPU hierarchy. The bench itself gates
# the pinned 89.2% anchor, the budget-knob frontier and the DPU spill arm;
# here the canonical RESULT lines (floats as raw bits) from two full runs
# must additionally be byte-identical — tier placement is deterministic by
# contract.
tiers_a=$(cargo bench --offline -p albatross-bench --bench offload_tiers -- offload_tiers | grep '^RESULT')
tiers_b=$(cargo bench --offline -p albatross-bench --bench offload_tiers -- offload_tiers | grep '^RESULT')
if [ "$tiers_a" != "$tiers_b" ]; then
    echo "ERROR: offload_tiers RESULT lines differ between two runs" >&2
    diff <(printf '%s\n' "$tiers_a") <(printf '%s\n' "$tiers_b") >&2 || true
    exit 1
fi
echo "    offload_tiers RESULT lines byte-identical across two runs"

echo "==> CPS frontier smoke bench + determinism gate"
# Short-flow/CPS frontier over the bucketed flow table. The bench itself
# hard-gates the untimed exactness arm (FlowStateEngine verdict-for-verdict
# against a HashMap model, plus installs == expired conservation after the
# final drain), the >= 2x batched-insert speedup over the default-hasher
# HashMap baseline, the install-budget CPS ceilings, and the churn-flood
# limiter (zero resident misses under a 1M CPS flood). Here the canonical
# RESULT lines from two full runs must additionally be byte-identical —
# flow-table layout and expiry order are deterministic by contract.
cps_a=$(cargo bench --offline -p albatross-bench --bench cps_frontier -- cps_frontier | grep '^RESULT')
cps_b=$(cargo bench --offline -p albatross-bench --bench cps_frontier -- cps_frontier | grep '^RESULT')
if [ "$cps_a" != "$cps_b" ]; then
    echo "ERROR: cps_frontier RESULT lines differ between two runs" >&2
    diff <(printf '%s\n' "$cps_a") <(printf '%s\n' "$cps_b") >&2 || true
    exit 1
fi
echo "    cps_frontier RESULT lines byte-identical across two runs"

echo "==> CI green"
