/root/repo/target/debug/examples/fault_injection-88d9908b80943642.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-88d9908b80943642: examples/fault_injection.rs

examples/fault_injection.rs:
