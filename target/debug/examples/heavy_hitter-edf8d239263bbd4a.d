/root/repo/target/debug/examples/heavy_hitter-edf8d239263bbd4a.d: examples/heavy_hitter.rs

/root/repo/target/debug/examples/heavy_hitter-edf8d239263bbd4a: examples/heavy_hitter.rs

examples/heavy_hitter.rs:
