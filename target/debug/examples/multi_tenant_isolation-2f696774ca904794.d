/root/repo/target/debug/examples/multi_tenant_isolation-2f696774ca904794.d: examples/multi_tenant_isolation.rs

/root/repo/target/debug/examples/multi_tenant_isolation-2f696774ca904794: examples/multi_tenant_isolation.rs

examples/multi_tenant_isolation.rs:
