/root/repo/target/debug/examples/packet_walkthrough-f76745fc9330fdf9.d: examples/packet_walkthrough.rs

/root/repo/target/debug/examples/packet_walkthrough-f76745fc9330fdf9: examples/packet_walkthrough.rs

examples/packet_walkthrough.rs:
