/root/repo/target/debug/examples/quickstart-2ee235c9d1982a5f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2ee235c9d1982a5f: examples/quickstart.rs

examples/quickstart.rs:
