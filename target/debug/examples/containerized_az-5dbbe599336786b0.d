/root/repo/target/debug/examples/containerized_az-5dbbe599336786b0.d: examples/containerized_az.rs

/root/repo/target/debug/examples/containerized_az-5dbbe599336786b0: examples/containerized_az.rs

examples/containerized_az.rs:
