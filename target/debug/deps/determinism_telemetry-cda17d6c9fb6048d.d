/root/repo/target/debug/deps/determinism_telemetry-cda17d6c9fb6048d.d: tests/determinism_telemetry.rs

/root/repo/target/debug/deps/determinism_telemetry-cda17d6c9fb6048d: tests/determinism_telemetry.rs

tests/determinism_telemetry.rs:
