/root/repo/target/debug/deps/albatross_sim-f34e26c16c307bca.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libalbatross_sim-f34e26c16c307bca.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libalbatross_sim-f34e26c16c307bca.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
