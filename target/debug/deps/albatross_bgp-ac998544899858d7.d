/root/repo/target/debug/deps/albatross_bgp-ac998544899858d7.d: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

/root/repo/target/debug/deps/libalbatross_bgp-ac998544899858d7.rlib: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

/root/repo/target/debug/deps/libalbatross_bgp-ac998544899858d7.rmeta: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

crates/bgp/src/lib.rs:
crates/bgp/src/bfd.rs:
crates/bgp/src/fsm.rs:
crates/bgp/src/msg.rs:
crates/bgp/src/proxy.rs:
crates/bgp/src/rib.rs:
crates/bgp/src/switchcp.rs:
