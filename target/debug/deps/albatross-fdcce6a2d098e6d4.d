/root/repo/target/debug/deps/albatross-fdcce6a2d098e6d4.d: src/bin/albatross.rs

/root/repo/target/debug/deps/albatross-fdcce6a2d098e6d4: src/bin/albatross.rs

src/bin/albatross.rs:
