/root/repo/target/debug/deps/albatross_telemetry-88614b5218e51b0b.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

/root/repo/target/debug/deps/libalbatross_telemetry-88614b5218e51b0b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

/root/repo/target/debug/deps/libalbatross_telemetry-88614b5218e51b0b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/series.rs:
