/root/repo/target/debug/deps/albatross_workload-7923312e4df36831.d: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libalbatross_workload-7923312e4df36831.rlib: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

/root/repo/target/debug/deps/libalbatross_workload-7923312e4df36831.rmeta: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/burst.rs:
crates/workload/src/flowgen.rs:
crates/workload/src/pktsize.rs:
crates/workload/src/tenant.rs:
crates/workload/src/traffic.rs:
