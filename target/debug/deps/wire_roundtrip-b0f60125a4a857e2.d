/root/repo/target/debug/deps/wire_roundtrip-b0f60125a4a857e2.d: tests/wire_roundtrip.rs

/root/repo/target/debug/deps/wire_roundtrip-b0f60125a4a857e2: tests/wire_roundtrip.rs

tests/wire_roundtrip.rs:
