/root/repo/target/debug/deps/albatross_testkit-0cdcfebcae1ae838.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libalbatross_testkit-0cdcfebcae1ae838.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libalbatross_testkit-0cdcfebcae1ae838.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
