/root/repo/target/debug/deps/albatross-232142d8c48e5943.d: src/bin/albatross.rs

/root/repo/target/debug/deps/albatross-232142d8c48e5943: src/bin/albatross.rs

src/bin/albatross.rs:
