/root/repo/target/debug/deps/albatross_gateway-db44ee3bd81e57ef.d: crates/gateway/src/lib.rs crates/gateway/src/acl.rs crates/gateway/src/lpm.rs crates/gateway/src/nat.rs crates/gateway/src/services.rs crates/gateway/src/session.rs crates/gateway/src/vmnc.rs crates/gateway/src/worker.rs

/root/repo/target/debug/deps/libalbatross_gateway-db44ee3bd81e57ef.rlib: crates/gateway/src/lib.rs crates/gateway/src/acl.rs crates/gateway/src/lpm.rs crates/gateway/src/nat.rs crates/gateway/src/services.rs crates/gateway/src/session.rs crates/gateway/src/vmnc.rs crates/gateway/src/worker.rs

/root/repo/target/debug/deps/libalbatross_gateway-db44ee3bd81e57ef.rmeta: crates/gateway/src/lib.rs crates/gateway/src/acl.rs crates/gateway/src/lpm.rs crates/gateway/src/nat.rs crates/gateway/src/services.rs crates/gateway/src/session.rs crates/gateway/src/vmnc.rs crates/gateway/src/worker.rs

crates/gateway/src/lib.rs:
crates/gateway/src/acl.rs:
crates/gateway/src/lpm.rs:
crates/gateway/src/nat.rs:
crates/gateway/src/services.rs:
crates/gateway/src/session.rs:
crates/gateway/src/vmnc.rs:
crates/gateway/src/worker.rs:
