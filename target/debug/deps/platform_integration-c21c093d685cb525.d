/root/repo/target/debug/deps/platform_integration-c21c093d685cb525.d: tests/platform_integration.rs

/root/repo/target/debug/deps/platform_integration-c21c093d685cb525: tests/platform_integration.rs

tests/platform_integration.rs:
