/root/repo/target/debug/deps/mode_equivalence-aa0c70b81ad9da50.d: tests/mode_equivalence.rs

/root/repo/target/debug/deps/mode_equivalence-aa0c70b81ad9da50: tests/mode_equivalence.rs

tests/mode_equivalence.rs:
