/root/repo/target/debug/deps/end_to_end_dataplane-10f3c3e5c4bdbdd9.d: tests/end_to_end_dataplane.rs

/root/repo/target/debug/deps/end_to_end_dataplane-10f3c3e5c4bdbdd9: tests/end_to_end_dataplane.rs

tests/end_to_end_dataplane.rs:
