/root/repo/target/debug/deps/albatross_mem-2513d2e1ca733bd4.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

/root/repo/target/debug/deps/libalbatross_mem-2513d2e1ca733bd4.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

/root/repo/target/debug/deps/libalbatross_mem-2513d2e1ca733bd4.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/numa.rs:
crates/mem/src/tables.rs:
