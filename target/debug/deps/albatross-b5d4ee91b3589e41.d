/root/repo/target/debug/deps/albatross-b5d4ee91b3589e41.d: src/lib.rs

/root/repo/target/debug/deps/libalbatross-b5d4ee91b3589e41.rlib: src/lib.rs

/root/repo/target/debug/deps/libalbatross-b5d4ee91b3589e41.rmeta: src/lib.rs

src/lib.rs:
