/root/repo/target/debug/deps/albatross_core-031cea58ff591d46.d: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

/root/repo/target/debug/deps/libalbatross_core-031cea58ff591d46.rlib: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

/root/repo/target/debug/deps/libalbatross_core-031cea58ff591d46.rmeta: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

crates/core/src/lib.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/ratelimit.rs:
crates/core/src/reorder.rs:
crates/core/src/rss.rs:
