/root/repo/target/debug/deps/albatross_fpga-f194f798423784e7.d: crates/fpga/src/lib.rs crates/fpga/src/basic.rs crates/fpga/src/dma.rs crates/fpga/src/offload.rs crates/fpga/src/pipeline.rs crates/fpga/src/pkt.rs crates/fpga/src/pktdir.rs crates/fpga/src/prio.rs crates/fpga/src/resource.rs crates/fpga/src/sriov.rs crates/fpga/src/tofino.rs

/root/repo/target/debug/deps/libalbatross_fpga-f194f798423784e7.rlib: crates/fpga/src/lib.rs crates/fpga/src/basic.rs crates/fpga/src/dma.rs crates/fpga/src/offload.rs crates/fpga/src/pipeline.rs crates/fpga/src/pkt.rs crates/fpga/src/pktdir.rs crates/fpga/src/prio.rs crates/fpga/src/resource.rs crates/fpga/src/sriov.rs crates/fpga/src/tofino.rs

/root/repo/target/debug/deps/libalbatross_fpga-f194f798423784e7.rmeta: crates/fpga/src/lib.rs crates/fpga/src/basic.rs crates/fpga/src/dma.rs crates/fpga/src/offload.rs crates/fpga/src/pipeline.rs crates/fpga/src/pkt.rs crates/fpga/src/pktdir.rs crates/fpga/src/prio.rs crates/fpga/src/resource.rs crates/fpga/src/sriov.rs crates/fpga/src/tofino.rs

crates/fpga/src/lib.rs:
crates/fpga/src/basic.rs:
crates/fpga/src/dma.rs:
crates/fpga/src/offload.rs:
crates/fpga/src/pipeline.rs:
crates/fpga/src/pkt.rs:
crates/fpga/src/pktdir.rs:
crates/fpga/src/prio.rs:
crates/fpga/src/resource.rs:
crates/fpga/src/sriov.rs:
crates/fpga/src/tofino.rs:
