/root/repo/target/debug/deps/albatross_container-0ffa75ee041b5f65.d: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

/root/repo/target/debug/deps/libalbatross_container-0ffa75ee041b5f65.rlib: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

/root/repo/target/debug/deps/libalbatross_container-0ffa75ee041b5f65.rmeta: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

crates/container/src/lib.rs:
crates/container/src/cost.rs:
crates/container/src/migration.rs:
crates/container/src/orchestrator.rs:
crates/container/src/pod.rs:
crates/container/src/server.rs:
crates/container/src/simrun.rs:
