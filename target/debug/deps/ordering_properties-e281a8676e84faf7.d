/root/repo/target/debug/deps/ordering_properties-e281a8676e84faf7.d: tests/ordering_properties.rs

/root/repo/target/debug/deps/ordering_properties-e281a8676e84faf7: tests/ordering_properties.rs

tests/ordering_properties.rs:
