/root/repo/target/debug/deps/albatross-b122c1f8cd5d422e.d: src/lib.rs

/root/repo/target/debug/deps/albatross-b122c1f8cd5d422e: src/lib.rs

src/lib.rs:
