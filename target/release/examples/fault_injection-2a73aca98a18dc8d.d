/root/repo/target/release/examples/fault_injection-2a73aca98a18dc8d.d: examples/fault_injection.rs

/root/repo/target/release/examples/fault_injection-2a73aca98a18dc8d: examples/fault_injection.rs

examples/fault_injection.rs:
