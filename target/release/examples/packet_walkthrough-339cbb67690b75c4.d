/root/repo/target/release/examples/packet_walkthrough-339cbb67690b75c4.d: examples/packet_walkthrough.rs

/root/repo/target/release/examples/packet_walkthrough-339cbb67690b75c4: examples/packet_walkthrough.rs

examples/packet_walkthrough.rs:
