/root/repo/target/release/examples/multi_tenant_isolation-93d99e9286460196.d: examples/multi_tenant_isolation.rs

/root/repo/target/release/examples/multi_tenant_isolation-93d99e9286460196: examples/multi_tenant_isolation.rs

examples/multi_tenant_isolation.rs:
