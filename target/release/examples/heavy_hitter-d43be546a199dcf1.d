/root/repo/target/release/examples/heavy_hitter-d43be546a199dcf1.d: examples/heavy_hitter.rs

/root/repo/target/release/examples/heavy_hitter-d43be546a199dcf1: examples/heavy_hitter.rs

examples/heavy_hitter.rs:
