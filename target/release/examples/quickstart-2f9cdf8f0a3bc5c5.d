/root/repo/target/release/examples/quickstart-2f9cdf8f0a3bc5c5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2f9cdf8f0a3bc5c5: examples/quickstart.rs

examples/quickstart.rs:
