/root/repo/target/release/examples/containerized_az-cde7dc28b3b46a0b.d: examples/containerized_az.rs

/root/repo/target/release/examples/containerized_az-cde7dc28b3b46a0b: examples/containerized_az.rs

examples/containerized_az.rs:
