/root/repo/target/release/deps/tab6_gateway_comparison-ccbcc5d6ddfd7bec.d: crates/bench/benches/tab6_gateway_comparison.rs

/root/repo/target/release/deps/tab6_gateway_comparison-ccbcc5d6ddfd7bec: crates/bench/benches/tab6_gateway_comparison.rs

crates/bench/benches/tab6_gateway_comparison.rs:
