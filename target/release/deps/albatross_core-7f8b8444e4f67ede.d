/root/repo/target/release/deps/albatross_core-7f8b8444e4f67ede.d: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

/root/repo/target/release/deps/albatross_core-7f8b8444e4f67ede: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

crates/core/src/lib.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/ratelimit.rs:
crates/core/src/reorder.rs:
crates/core/src/rss.rs:
