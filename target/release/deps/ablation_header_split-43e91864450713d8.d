/root/repo/target/release/deps/ablation_header_split-43e91864450713d8.d: crates/bench/benches/ablation_header_split.rs

/root/repo/target/release/deps/ablation_header_split-43e91864450713d8: crates/bench/benches/ablation_header_split.rs

crates/bench/benches/ablation_header_split.rs:
