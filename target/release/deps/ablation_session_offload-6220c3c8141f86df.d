/root/repo/target/release/deps/ablation_session_offload-6220c3c8141f86df.d: crates/bench/benches/ablation_session_offload.rs

/root/repo/target/release/deps/ablation_session_offload-6220c3c8141f86df: crates/bench/benches/ablation_session_offload.rs

crates/bench/benches/ablation_session_offload.rs:
