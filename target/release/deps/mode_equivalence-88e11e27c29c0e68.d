/root/repo/target/release/deps/mode_equivalence-88e11e27c29c0e68.d: tests/mode_equivalence.rs

/root/repo/target/release/deps/mode_equivalence-88e11e27c29c0e68: tests/mode_equivalence.rs

tests/mode_equivalence.rs:
