/root/repo/target/release/deps/codec_properties-613a8c9ac8cde46f.d: crates/bgp/tests/codec_properties.rs

/root/repo/target/release/deps/codec_properties-613a8c9ac8cde46f: crates/bgp/tests/codec_properties.rs

crates/bgp/tests/codec_properties.rs:
