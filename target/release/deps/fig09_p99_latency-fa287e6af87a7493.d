/root/repo/target/release/deps/fig09_p99_latency-fa287e6af87a7493.d: crates/bench/benches/fig09_p99_latency.rs

/root/repo/target/release/deps/fig09_p99_latency-fa287e6af87a7493: crates/bench/benches/fig09_p99_latency.rs

crates/bench/benches/fig09_p99_latency.rs:
