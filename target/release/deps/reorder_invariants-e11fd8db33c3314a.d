/root/repo/target/release/deps/reorder_invariants-e11fd8db33c3314a.d: crates/core/tests/reorder_invariants.rs

/root/repo/target/release/deps/reorder_invariants-e11fd8db33c3314a: crates/core/tests/reorder_invariants.rs

crates/core/tests/reorder_invariants.rs:
