/root/repo/target/release/deps/albatross-98ada848fd63a753.d: src/lib.rs

/root/repo/target/release/deps/albatross-98ada848fd63a753: src/lib.rs

src/lib.rs:
