/root/repo/target/release/deps/fig07_bgp_proxy-a0a77c45f12e63c5.d: crates/bench/benches/fig07_bgp_proxy.rs

/root/repo/target/release/deps/fig07_bgp_proxy-a0a77c45f12e63c5: crates/bench/benches/fig07_bgp_proxy.rs

crates/bench/benches/fig07_bgp_proxy.rs:
