/root/repo/target/release/deps/albatross_bench-6e2ffc09cd338c4b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/albatross_bench-6e2ffc09cd338c4b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
