/root/repo/target/release/deps/nic_integration-0182e652a13f79c5.d: crates/fpga/tests/nic_integration.rs

/root/repo/target/release/deps/nic_integration-0182e652a13f79c5: crates/fpga/tests/nic_integration.rs

crates/fpga/tests/nic_integration.rs:
