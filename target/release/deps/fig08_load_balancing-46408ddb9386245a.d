/root/repo/target/release/deps/fig08_load_balancing-46408ddb9386245a.d: crates/bench/benches/fig08_load_balancing.rs

/root/repo/target/release/deps/fig08_load_balancing-46408ddb9386245a: crates/bench/benches/fig08_load_balancing.rs

crates/bench/benches/fig08_load_balancing.rs:
