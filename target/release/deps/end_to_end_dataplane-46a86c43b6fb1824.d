/root/repo/target/release/deps/end_to_end_dataplane-46a86c43b6fb1824.d: tests/end_to_end_dataplane.rs

/root/repo/target/release/deps/end_to_end_dataplane-46a86c43b6fb1824: tests/end_to_end_dataplane.rs

tests/end_to_end_dataplane.rs:
