/root/repo/target/release/deps/albatross_workload-d4d3dae8277082bc.d: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libalbatross_workload-d4d3dae8277082bc.rlib: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/libalbatross_workload-d4d3dae8277082bc.rmeta: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/burst.rs:
crates/workload/src/flowgen.rs:
crates/workload/src/pktsize.rs:
crates/workload/src/tenant.rs:
crates/workload/src/traffic.rs:
