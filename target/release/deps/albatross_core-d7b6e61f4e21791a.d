/root/repo/target/release/deps/albatross_core-d7b6e61f4e21791a.d: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

/root/repo/target/release/deps/libalbatross_core-d7b6e61f4e21791a.rlib: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

/root/repo/target/release/deps/libalbatross_core-d7b6e61f4e21791a.rmeta: crates/core/src/lib.rs crates/core/src/dispatch.rs crates/core/src/engine.rs crates/core/src/ratelimit.rs crates/core/src/reorder.rs crates/core/src/rss.rs

crates/core/src/lib.rs:
crates/core/src/dispatch.rs:
crates/core/src/engine.rs:
crates/core/src/ratelimit.rs:
crates/core/src/reorder.rs:
crates/core/src/rss.rs:
