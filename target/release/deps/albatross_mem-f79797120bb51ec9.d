/root/repo/target/release/deps/albatross_mem-f79797120bb51ec9.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

/root/repo/target/release/deps/albatross_mem-f79797120bb51ec9: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/numa.rs:
crates/mem/src/tables.rs:
