/root/repo/target/release/deps/micro-999b4523d6c2c43f.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-999b4523d6c2c43f: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
