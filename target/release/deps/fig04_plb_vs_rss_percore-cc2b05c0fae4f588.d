/root/repo/target/release/deps/fig04_plb_vs_rss_percore-cc2b05c0fae4f588.d: crates/bench/benches/fig04_plb_vs_rss_percore.rs

/root/repo/target/release/deps/fig04_plb_vs_rss_percore-cc2b05c0fae4f588: crates/bench/benches/fig04_plb_vs_rss_percore.rs

crates/bench/benches/fig04_plb_vs_rss_percore.rs:
