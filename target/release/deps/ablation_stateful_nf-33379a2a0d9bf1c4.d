/root/repo/target/release/deps/ablation_stateful_nf-33379a2a0d9bf1c4.d: crates/bench/benches/ablation_stateful_nf.rs

/root/repo/target/release/deps/ablation_stateful_nf-33379a2a0d9bf1c4: crates/bench/benches/ablation_stateful_nf.rs

crates/bench/benches/ablation_stateful_nf.rs:
