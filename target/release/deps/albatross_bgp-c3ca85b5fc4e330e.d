/root/repo/target/release/deps/albatross_bgp-c3ca85b5fc4e330e.d: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

/root/repo/target/release/deps/albatross_bgp-c3ca85b5fc4e330e: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

crates/bgp/src/lib.rs:
crates/bgp/src/bfd.rs:
crates/bgp/src/fsm.rs:
crates/bgp/src/msg.rs:
crates/bgp/src/proxy.rs:
crates/bgp/src/rib.rs:
crates/bgp/src/switchcp.rs:
