/root/repo/target/release/deps/ordering_properties-006d99c8f5ce4dac.d: tests/ordering_properties.rs

/root/repo/target/release/deps/ordering_properties-006d99c8f5ce4dac: tests/ordering_properties.rs

tests/ordering_properties.rs:
