/root/repo/target/release/deps/albatross_telemetry-9f647d2f323c3ddd.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

/root/repo/target/release/deps/albatross_telemetry-9f647d2f323c3ddd: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/series.rs:
