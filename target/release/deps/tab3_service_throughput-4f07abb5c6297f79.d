/root/repo/target/release/deps/tab3_service_throughput-4f07abb5c6297f79.d: crates/bench/benches/tab3_service_throughput.rs

/root/repo/target/release/deps/tab3_service_throughput-4f07abb5c6297f79: crates/bench/benches/tab3_service_throughput.rs

crates/bench/benches/tab3_service_throughput.rs:
