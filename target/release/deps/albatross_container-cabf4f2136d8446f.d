/root/repo/target/release/deps/albatross_container-cabf4f2136d8446f.d: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

/root/repo/target/release/deps/albatross_container-cabf4f2136d8446f: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

crates/container/src/lib.rs:
crates/container/src/cost.rs:
crates/container/src/migration.rs:
crates/container/src/orchestrator.rs:
crates/container/src/pod.rs:
crates/container/src/server.rs:
crates/container/src/simrun.rs:
