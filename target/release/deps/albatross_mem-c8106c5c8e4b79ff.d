/root/repo/target/release/deps/albatross_mem-c8106c5c8e4b79ff.d: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

/root/repo/target/release/deps/libalbatross_mem-c8106c5c8e4b79ff.rlib: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

/root/repo/target/release/deps/libalbatross_mem-c8106c5c8e4b79ff.rmeta: crates/mem/src/lib.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/numa.rs crates/mem/src/tables.rs

crates/mem/src/lib.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/numa.rs:
crates/mem/src/tables.rs:
