/root/repo/target/release/deps/fig17_numa_balancing-c4de455d5ab5d792.d: crates/bench/benches/fig17_numa_balancing.rs

/root/repo/target/release/deps/fig17_numa_balancing-c4de455d5ab5d792: crates/bench/benches/fig17_numa_balancing.rs

crates/bench/benches/fig17_numa_balancing.rs:
