/root/repo/target/release/deps/lpm_properties-f968558ad0679657.d: crates/gateway/tests/lpm_properties.rs

/root/repo/target/release/deps/lpm_properties-f968558ad0679657: crates/gateway/tests/lpm_properties.rs

crates/gateway/tests/lpm_properties.rs:
