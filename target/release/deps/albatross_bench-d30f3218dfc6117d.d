/root/repo/target/release/deps/albatross_bench-d30f3218dfc6117d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libalbatross_bench-d30f3218dfc6117d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libalbatross_bench-d30f3218dfc6117d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
