/root/repo/target/release/deps/determinism_telemetry-a6c92b8e974fe5e8.d: tests/determinism_telemetry.rs

/root/repo/target/release/deps/determinism_telemetry-a6c92b8e974fe5e8: tests/determinism_telemetry.rs

tests/determinism_telemetry.rs:
