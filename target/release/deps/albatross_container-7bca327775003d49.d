/root/repo/target/release/deps/albatross_container-7bca327775003d49.d: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

/root/repo/target/release/deps/libalbatross_container-7bca327775003d49.rlib: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

/root/repo/target/release/deps/libalbatross_container-7bca327775003d49.rmeta: crates/container/src/lib.rs crates/container/src/cost.rs crates/container/src/migration.rs crates/container/src/orchestrator.rs crates/container/src/pod.rs crates/container/src/server.rs crates/container/src/simrun.rs

crates/container/src/lib.rs:
crates/container/src/cost.rs:
crates/container/src/migration.rs:
crates/container/src/orchestrator.rs:
crates/container/src/pod.rs:
crates/container/src/server.rs:
crates/container/src/simrun.rs:
