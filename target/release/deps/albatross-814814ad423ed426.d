/root/repo/target/release/deps/albatross-814814ad423ed426.d: src/bin/albatross.rs

/root/repo/target/release/deps/albatross-814814ad423ed426: src/bin/albatross.rs

src/bin/albatross.rs:
