/root/repo/target/release/deps/albatross_sim-5407e9544843646d.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libalbatross_sim-5407e9544843646d.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libalbatross_sim-5407e9544843646d.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
