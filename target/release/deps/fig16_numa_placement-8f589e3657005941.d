/root/repo/target/release/deps/fig16_numa_placement-8f589e3657005941.d: crates/bench/benches/fig16_numa_placement.rs

/root/repo/target/release/deps/fig16_numa_placement-8f589e3657005941: crates/bench/benches/fig16_numa_placement.rs

crates/bench/benches/fig16_numa_placement.rs:
