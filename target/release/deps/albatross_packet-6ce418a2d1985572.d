/root/repo/target/release/deps/albatross_packet-6ce418a2d1985572.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/ether.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/meta.rs crates/packet/src/rss.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

/root/repo/target/release/deps/albatross_packet-6ce418a2d1985572: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/ether.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/meta.rs crates/packet/src/rss.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/vlan.rs crates/packet/src/vxlan.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/ether.rs:
crates/packet/src/flow.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/meta.rs:
crates/packet/src/rss.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/vlan.rs:
crates/packet/src/vxlan.rs:
