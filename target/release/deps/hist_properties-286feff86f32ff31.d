/root/repo/target/release/deps/hist_properties-286feff86f32ff31.d: crates/telemetry/tests/hist_properties.rs

/root/repo/target/release/deps/hist_properties-286feff86f32ff31: crates/telemetry/tests/hist_properties.rs

crates/telemetry/tests/hist_properties.rs:
