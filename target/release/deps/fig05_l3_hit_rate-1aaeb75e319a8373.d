/root/repo/target/release/deps/fig05_l3_hit_rate-1aaeb75e319a8373.d: crates/bench/benches/fig05_l3_hit_rate.rs

/root/repo/target/release/deps/fig05_l3_hit_rate-1aaeb75e319a8373: crates/bench/benches/fig05_l3_hit_rate.rs

crates/bench/benches/fig05_l3_hit_rate.rs:
