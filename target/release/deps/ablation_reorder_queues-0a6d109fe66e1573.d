/root/repo/target/release/deps/ablation_reorder_queues-0a6d109fe66e1573.d: crates/bench/benches/ablation_reorder_queues.rs

/root/repo/target/release/deps/ablation_reorder_queues-0a6d109fe66e1573: crates/bench/benches/ablation_reorder_queues.rs

crates/bench/benches/ablation_reorder_queues.rs:
