/root/repo/target/release/deps/albatross-cf6d73a0de4ab61f.d: src/bin/albatross.rs

/root/repo/target/release/deps/albatross-cf6d73a0de4ab61f: src/bin/albatross.rs

src/bin/albatross.rs:
