/root/repo/target/release/deps/albatross_workload-f648736b89011785.d: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

/root/repo/target/release/deps/albatross_workload-f648736b89011785: crates/workload/src/lib.rs crates/workload/src/burst.rs crates/workload/src/flowgen.rs crates/workload/src/pktsize.rs crates/workload/src/tenant.rs crates/workload/src/traffic.rs

crates/workload/src/lib.rs:
crates/workload/src/burst.rs:
crates/workload/src/flowgen.rs:
crates/workload/src/pktsize.rs:
crates/workload/src/tenant.rs:
crates/workload/src/traffic.rs:
