/root/repo/target/release/deps/albatross_bgp-3a9571bac759de18.d: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

/root/repo/target/release/deps/libalbatross_bgp-3a9571bac759de18.rlib: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

/root/repo/target/release/deps/libalbatross_bgp-3a9571bac759de18.rmeta: crates/bgp/src/lib.rs crates/bgp/src/bfd.rs crates/bgp/src/fsm.rs crates/bgp/src/msg.rs crates/bgp/src/proxy.rs crates/bgp/src/rib.rs crates/bgp/src/switchcp.rs

crates/bgp/src/lib.rs:
crates/bgp/src/bfd.rs:
crates/bgp/src/fsm.rs:
crates/bgp/src/msg.rs:
crates/bgp/src/proxy.rs:
crates/bgp/src/rib.rs:
crates/bgp/src/switchcp.rs:
