/root/repo/target/release/deps/golden_probe-6a9b7c0d02793336.d: crates/core/tests/golden_probe.rs

/root/repo/target/release/deps/golden_probe-6a9b7c0d02793336: crates/core/tests/golden_probe.rs

crates/core/tests/golden_probe.rs:
