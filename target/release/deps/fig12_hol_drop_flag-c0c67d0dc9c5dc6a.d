/root/repo/target/release/deps/fig12_hol_drop_flag-c0c67d0dc9c5dc6a.d: crates/bench/benches/fig12_hol_drop_flag.rs

/root/repo/target/release/deps/fig12_hol_drop_flag-c0c67d0dc9c5dc6a: crates/bench/benches/fig12_hol_drop_flag.rs

crates/bench/benches/fig12_hol_drop_flag.rs:
