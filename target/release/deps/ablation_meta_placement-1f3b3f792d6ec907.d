/root/repo/target/release/deps/ablation_meta_placement-1f3b3f792d6ec907.d: crates/bench/benches/ablation_meta_placement.rs

/root/repo/target/release/deps/ablation_meta_placement-1f3b3f792d6ec907: crates/bench/benches/ablation_meta_placement.rs

crates/bench/benches/ablation_meta_placement.rs:
