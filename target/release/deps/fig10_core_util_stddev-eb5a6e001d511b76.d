/root/repo/target/release/deps/fig10_core_util_stddev-eb5a6e001d511b76.d: crates/bench/benches/fig10_core_util_stddev.rs

/root/repo/target/release/deps/fig10_core_util_stddev-eb5a6e001d511b76: crates/bench/benches/fig10_core_util_stddev.rs

crates/bench/benches/fig10_core_util_stddev.rs:
