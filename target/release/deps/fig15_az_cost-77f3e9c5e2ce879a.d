/root/repo/target/release/deps/fig15_az_cost-77f3e9c5e2ce879a.d: crates/bench/benches/fig15_az_cost.rs

/root/repo/target/release/deps/fig15_az_cost-77f3e9c5e2ce879a: crates/bench/benches/fig15_az_cost.rs

crates/bench/benches/fig15_az_cost.rs:
