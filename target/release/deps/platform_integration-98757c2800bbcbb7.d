/root/repo/target/release/deps/platform_integration-98757c2800bbcbb7.d: tests/platform_integration.rs

/root/repo/target/release/deps/platform_integration-98757c2800bbcbb7: tests/platform_integration.rs

tests/platform_integration.rs:
