/root/repo/target/release/deps/albatross_telemetry-4b1e92f921ccdb1b.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

/root/repo/target/release/deps/libalbatross_telemetry-4b1e92f921ccdb1b.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

/root/repo/target/release/deps/libalbatross_telemetry-4b1e92f921ccdb1b.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/hist.rs crates/telemetry/src/report.rs crates/telemetry/src/series.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/hist.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/series.rs:
