/root/repo/target/release/deps/tab4_nic_latency-fae4127452734181.d: crates/bench/benches/tab4_nic_latency.rs

/root/repo/target/release/deps/tab4_nic_latency-fae4127452734181: crates/bench/benches/tab4_nic_latency.rs

crates/bench/benches/tab4_nic_latency.rs:
