/root/repo/target/release/deps/tab1_tofino_resources-6ea84be21d9576cd.d: crates/bench/benches/tab1_tofino_resources.rs

/root/repo/target/release/deps/tab1_tofino_resources-6ea84be21d9576cd: crates/bench/benches/tab1_tofino_resources.rs

crates/bench/benches/tab1_tofino_resources.rs:
