/root/repo/target/release/deps/wire_roundtrip-c1fc0fd9cd53d30f.d: tests/wire_roundtrip.rs

/root/repo/target/release/deps/wire_roundtrip-c1fc0fd9cd53d30f: tests/wire_roundtrip.rs

tests/wire_roundtrip.rs:
