/root/repo/target/release/deps/golden_sequences-1563822e7eaf66cc.d: crates/core/tests/golden_sequences.rs

/root/repo/target/release/deps/golden_sequences-1563822e7eaf66cc: crates/core/tests/golden_sequences.rs

crates/core/tests/golden_sequences.rs:
