/root/repo/target/release/deps/sim_properties-f917f24bface3c40.d: crates/sim/tests/sim_properties.rs

/root/repo/target/release/deps/sim_properties-f917f24bface3c40: crates/sim/tests/sim_properties.rs

crates/sim/tests/sim_properties.rs:
