/root/repo/target/release/deps/albatross_sim-e5c307e8a5353e08.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/albatross_sim-e5c307e8a5353e08: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rate.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rate.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
