/root/repo/target/release/deps/fig13_no_ratelimit-c6c14fa8c6d86ca8.d: crates/bench/benches/fig13_no_ratelimit.rs

/root/repo/target/release/deps/fig13_no_ratelimit-c6c14fa8c6d86ca8: crates/bench/benches/fig13_no_ratelimit.rs

crates/bench/benches/fig13_no_ratelimit.rs:
