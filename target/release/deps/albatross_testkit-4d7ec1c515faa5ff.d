/root/repo/target/release/deps/albatross_testkit-4d7ec1c515faa5ff.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/albatross_testkit-4d7ec1c515faa5ff: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
