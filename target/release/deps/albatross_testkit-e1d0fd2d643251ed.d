/root/repo/target/release/deps/albatross_testkit-e1d0fd2d643251ed.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libalbatross_testkit-e1d0fd2d643251ed.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libalbatross_testkit-e1d0fd2d643251ed.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
