/root/repo/target/release/deps/albatross_gateway-1133efb56303b9cc.d: crates/gateway/src/lib.rs crates/gateway/src/acl.rs crates/gateway/src/lpm.rs crates/gateway/src/nat.rs crates/gateway/src/services.rs crates/gateway/src/session.rs crates/gateway/src/vmnc.rs crates/gateway/src/worker.rs

/root/repo/target/release/deps/albatross_gateway-1133efb56303b9cc: crates/gateway/src/lib.rs crates/gateway/src/acl.rs crates/gateway/src/lpm.rs crates/gateway/src/nat.rs crates/gateway/src/services.rs crates/gateway/src/session.rs crates/gateway/src/vmnc.rs crates/gateway/src/worker.rs

crates/gateway/src/lib.rs:
crates/gateway/src/acl.rs:
crates/gateway/src/lpm.rs:
crates/gateway/src/nat.rs:
crates/gateway/src/services.rs:
crates/gateway/src/session.rs:
crates/gateway/src/vmnc.rs:
crates/gateway/src/worker.rs:
