/root/repo/target/release/deps/ablation_ratelimit_sram-6420b319ad7cfd74.d: crates/bench/benches/ablation_ratelimit_sram.rs

/root/repo/target/release/deps/ablation_ratelimit_sram-6420b319ad7cfd74: crates/bench/benches/ablation_ratelimit_sram.rs

crates/bench/benches/ablation_ratelimit_sram.rs:
