/root/repo/target/release/deps/tab5_fpga_resources-ab3a15fe91b136a5.d: crates/bench/benches/tab5_fpga_resources.rs

/root/repo/target/release/deps/tab5_fpga_resources-ab3a15fe91b136a5: crates/bench/benches/tab5_fpga_resources.rs

crates/bench/benches/tab5_fpga_resources.rs:
