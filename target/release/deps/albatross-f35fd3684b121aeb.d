/root/repo/target/release/deps/albatross-f35fd3684b121aeb.d: src/lib.rs

/root/repo/target/release/deps/libalbatross-f35fd3684b121aeb.rlib: src/lib.rs

/root/repo/target/release/deps/libalbatross-f35fd3684b121aeb.rmeta: src/lib.rs

src/lib.rs:
