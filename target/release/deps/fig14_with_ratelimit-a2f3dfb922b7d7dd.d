/root/repo/target/release/deps/fig14_with_ratelimit-a2f3dfb922b7d7dd.d: crates/bench/benches/fig14_with_ratelimit.rs

/root/repo/target/release/deps/fig14_with_ratelimit-a2f3dfb922b7d7dd: crates/bench/benches/fig14_with_ratelimit.rs

crates/bench/benches/fig14_with_ratelimit.rs:
