/root/repo/target/release/deps/ratelimit_properties-0252e3fed5e0f40b.d: crates/core/tests/ratelimit_properties.rs

/root/repo/target/release/deps/ratelimit_properties-0252e3fed5e0f40b: crates/core/tests/ratelimit_properties.rs

crates/core/tests/ratelimit_properties.rs:
