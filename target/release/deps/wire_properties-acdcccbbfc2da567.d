/root/repo/target/release/deps/wire_properties-acdcccbbfc2da567.d: crates/packet/tests/wire_properties.rs

/root/repo/target/release/deps/wire_properties-acdcccbbfc2da567: crates/packet/tests/wire_properties.rs

crates/packet/tests/wire_properties.rs:
