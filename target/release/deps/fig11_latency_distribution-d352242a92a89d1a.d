/root/repo/target/release/deps/fig11_latency_distribution-d352242a92a89d1a.d: crates/bench/benches/fig11_latency_distribution.rs

/root/repo/target/release/deps/fig11_latency_distribution-d352242a92a89d1a: crates/bench/benches/fig11_latency_distribution.rs

crates/bench/benches/fig11_latency_distribution.rs:
