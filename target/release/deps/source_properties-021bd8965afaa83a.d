/root/repo/target/release/deps/source_properties-021bd8965afaa83a.d: crates/workload/tests/source_properties.rs

/root/repo/target/release/deps/source_properties-021bd8965afaa83a: crates/workload/tests/source_properties.rs

crates/workload/tests/source_properties.rs:
